// Unit tests for the observability primitives: the metrics registry
// (keying, kinds, reconciliation sums, snapshot determinism), the
// recorder's event/decision sinks, and the decision-log JSONL shape.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "hw/presets.hpp"
#include "obs/recorder.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace hetflow::obs {
namespace {

TEST(Metrics, KeyBuildsPrometheusStyleNames) {
  EXPECT_EQ(MetricsRegistry::key("tasks", {}), "tasks");
  EXPECT_EQ(MetricsRegistry::key(
                "tasks", {{"device", "gpu0"}, {"scheduler", "dmda"}}),
            "tasks{device=gpu0,scheduler=dmda}");
}

TEST(Metrics, CounterAccumulatesPerLabelSet) {
  MetricsRegistry registry;
  registry.counter("tasks", {{"device", "cpu0"}}).inc();
  registry.counter("tasks", {{"device", "cpu0"}}).inc();
  registry.counter("tasks", {{"device", "gpu0"}}).inc(3.0);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_DOUBLE_EQ(registry.counter_value("tasks", {{"device", "cpu0"}}), 2.0);
  EXPECT_DOUBLE_EQ(registry.counter_value("tasks", {{"device", "gpu0"}}), 3.0);
  EXPECT_DOUBLE_EQ(registry.counter_sum("tasks"), 5.0);
  EXPECT_DOUBLE_EQ(registry.counter_sum("absent"), 0.0);
  EXPECT_DOUBLE_EQ(registry.counter_value("tasks", {{"device", "dsp0"}}), 0.0);
}

TEST(Metrics, CounterSumIgnoresOtherKindsAndPrefixes) {
  MetricsRegistry registry;
  registry.counter("busy", {{"device", "cpu0"}}).inc(1.5);
  registry.gauge("busy_peak").set(100.0);        // different name
  registry.counter("busy_total").inc(7.0);       // prefix, not same name
  EXPECT_DOUBLE_EQ(registry.counter_sum("busy"), 1.5);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), InvalidArgument);
  EXPECT_THROW(registry.time_weighted("x"), InvalidArgument);
}

TEST(Metrics, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  registry.gauge("makespan_s").set(1.0);
  registry.gauge("makespan_s").set(2.5);
  const util::Json doc = registry.to_json();
  const auto& entries = doc.at("metrics").as_array();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].at("value").as_number(), 2.5);
  EXPECT_EQ(entries[0].at("kind").as_string(), "gauge");
}

TEST(Metrics, TimeWeightedMeanIntegratesThePiecewiseSignal) {
  TimeWeighted tw;
  EXPECT_FALSE(tw.observed());
  tw.update(0.0, 2.0);   // value 2 on [0, 1)
  tw.update(1.0, 4.0);   // value 4 on [1, 3)
  tw.update(3.0, 0.0);
  EXPECT_TRUE(tw.observed());
  EXPECT_DOUBLE_EQ(tw.last(), 0.0);
  EXPECT_DOUBLE_EQ(tw.min(), 0.0);
  EXPECT_DOUBLE_EQ(tw.max(), 4.0);
  // (2*1 + 4*2) / 3
  EXPECT_DOUBLE_EQ(tw.mean(), 10.0 / 3.0);
  EXPECT_EQ(tw.updates(), 3u);
}

TEST(Metrics, TimeWeightedSingleUpdateMeanIsTheValue) {
  TimeWeighted tw;
  tw.update(5.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 3.0);
}

TEST(Metrics, SnapshotsAreOrderIndependent) {
  // Two registries touched in opposite orders serialize identically —
  // the property behind jobs-count-independent golden snapshots.
  MetricsRegistry a;
  a.counter("tasks", {{"device", "cpu0"}}).inc();
  a.counter("bytes", {{"src", "ram"}, {"dst", "vram"}}).inc(64.0);
  a.gauge("makespan_s").set(1.5);

  MetricsRegistry b;
  b.gauge("makespan_s").set(1.5);
  b.counter("bytes", {{"src", "ram"}, {"dst", "vram"}}).inc(64.0);
  b.counter("tasks", {{"device", "cpu0"}}).inc();

  EXPECT_EQ(a.to_json_string(), b.to_json_string());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Metrics, JsonSnapshotShape) {
  MetricsRegistry registry;
  registry.counter("tasks", {{"device", "cpu0"}}).inc(2.0);
  registry.time_weighted("depth").update(0.0, 1.0);
  const util::Json doc = registry.to_json();
  const auto& entries = doc.at("metrics").as_array();
  ASSERT_EQ(entries.size(), 2u);
  // "depth" < "tasks{...}" lexicographically.
  EXPECT_EQ(entries[0].at("name").as_string(), "depth");
  EXPECT_EQ(entries[0].at("kind").as_string(), "time_weighted");
  EXPECT_TRUE(entries[0].contains("mean"));
  EXPECT_TRUE(entries[0].contains("updates"));
  EXPECT_EQ(entries[1].at("name").as_string(), "tasks");
  EXPECT_EQ(entries[1].at("labels").at("device").as_string(), "cpu0");
}

TEST(Metrics, CsvHasHeaderAndOneRowPerEntry) {
  MetricsRegistry registry;
  registry.counter("tasks").inc();
  registry.gauge("makespan_s").set(0.5);
  const std::string csv = registry.to_csv();
  EXPECT_NE(csv.find("name,labels,kind,value,min,max,mean,updates"),
            std::string::npos);
  EXPECT_NE(csv.find("tasks"), std::string::npos);
  EXPECT_NE(csv.find("makespan_s"), std::string::npos);
}

TEST(Recorder, DisabledRecorderDropsEverything) {
  Recorder recorder(false);
  Event event;
  event.kind = EventKind::Retry;
  event.time = 1.0;
  recorder.record(std::move(event));
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_FALSE(recorder.enabled());
}

TEST(Recorder, DecisionsMirrorAsInstantEvents) {
  Recorder recorder;
  SchedDecision decision;
  decision.task = 42;
  decision.task_name = "gemm";
  decision.time = 1.25;
  decision.scheduler = "dmda";
  decision.candidates.push_back({0, 2.0, 5.0, false});
  decision.candidates.push_back({1, 1.5, 9.0, true});
  decision.winner = 1;
  decision.reason = "min completion";
  recorder.add_decision(std::move(decision));
  ASSERT_EQ(recorder.decisions().size(), 1u);
  ASSERT_EQ(recorder.events().size(), 1u);
  EXPECT_EQ(recorder.events()[0].kind, EventKind::Decision);
  EXPECT_EQ(recorder.events()[0].device, 1);
  EXPECT_EQ(recorder.events()[0].task, 42u);
  EXPECT_DOUBLE_EQ(recorder.events()[0].time, 1.25);
}

TEST(Recorder, DecisionJsonlResolvesDeviceNames) {
  const hw::Platform p = hw::make_workstation();
  Recorder recorder;
  SchedDecision decision;
  decision.task = 7;
  decision.task_name = "fft";
  decision.time = 0.5;
  decision.scheduler = "mct";
  decision.candidates.push_back({0, 1.0, 2.0, false});
  decision.winner = 0;
  decision.reason = "min completion (data-blind)";
  recorder.add_decision(std::move(decision));
  const std::string jsonl = recorder.decisions_jsonl(p);
  // One line, parseable, device ids resolved to names.
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1);
  const util::Json line = util::Json::parse(jsonl);
  EXPECT_EQ(line.at("task").as_number(), 7.0);
  EXPECT_EQ(line.at("sched").as_string(), "mct");
  EXPECT_EQ(line.at("winner").as_string(), p.device(0).name());
  ASSERT_EQ(line.at("candidates").size(), 1u);
  EXPECT_EQ(line.at("candidates").as_array()[0].at("device").as_string(),
            p.device(0).name());
}

}  // namespace
}  // namespace hetflow::obs
