// The cost-model cache (core/cost_cache.hpp) and the batched completion
// drain are performance features with a correctness contract: with
// memoize_costs on, every scheduler must make the exact same decisions
// it would make recomputing costs from scratch — proven here by byte
// comparison of every serialized artifact — and with batch_completions
// on, every run must still pass the full end-of-run audit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "hw/failure.hpp"
#include "hw/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/registry.hpp"
#include "trace/report.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow {
namespace {

/// Every byte-stable artifact one instrumented run can serialize.
struct Artifacts {
  std::string spans_csv;
  std::string metrics_json;
  std::string metrics_csv;
  std::string chrome_trace;
  std::string decisions;

  bool operator==(const Artifacts& other) const {
    return spans_csv == other.spans_csv &&
           metrics_json == other.metrics_json &&
           metrics_csv == other.metrics_csv &&
           chrome_trace == other.chrome_trace &&
           decisions == other.decisions;
  }
};

Artifacts run_cell(const std::string& scheduler, bool memoize,
                   bool use_history, std::uint64_t seed) {
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = seed;
  // Noise makes every recorded duration differ from the estimate, so the
  // history model recalibrates continuously — the hardest case for the
  // cache's generation-based invalidation.
  options.noise_cv = 0.2;
  options.use_history_model = use_history;
  options.memoize_costs = memoize;
  core::Runtime rt(p, sched::make_scheduler(scheduler), options);
  workflow::submit_workflow(rt, workflow::make_montage(10),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  Artifacts out;
  out.spans_csv = trace::spans_to_csv(rt.tracer());
  out.metrics_json = rt.recorder()->metrics().to_json_string();
  out.metrics_csv = rt.recorder()->metrics().to_csv();
  out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
  out.decisions = rt.recorder()->decisions_jsonl(p);
  return out;
}

// The tentpole property: for EVERY registered scheduler, a memoized run
// serializes byte-identically to a direct-recompute run — span CSV,
// metrics JSON/CSV, Chrome trace and decision log. Any drift (a cached
// reciprocal instead of the exact division, a stale history entry) shows
// up as a first-divergence in one of these strings.
TEST(CostMemoization, MemoizedMatchesDirectAcrossAllSchedulers) {
  for (const std::string& scheduler : sched::scheduler_names()) {
    const Artifacts direct = run_cell(scheduler, false, true, 7);
    const Artifacts memoized = run_cell(scheduler, true, true, 7);
    EXPECT_TRUE(memoized == direct) << scheduler;
    // Spans always exist; decision logs only for the policies that emit
    // them (the list schedulers decide at plan time, off the hot path).
    EXPECT_FALSE(direct.spans_csv.empty()) << scheduler;
  }
}

// Same property with the history model off: only the analytic path
// (peak_gflops * efficiency denominator, launch overhead, DVFS scaling)
// is exercised, so a regression localizes to the static terms.
TEST(CostMemoization, MemoizedMatchesDirectOnStaticModelOnly) {
  for (const std::string& scheduler :
       {std::string("mct"), std::string("dmda"), std::string("heft"),
        std::string("energy-edp")}) {
    const Artifacts direct = run_cell(scheduler, false, false, 11);
    const Artifacts memoized = run_cell(scheduler, true, false, 11);
    EXPECT_TRUE(memoized == direct) << scheduler;
  }
}

// History recalibration invalidates the cache mid-run: two runs of the
// same seeded workload must agree with themselves (repeatability) and
// with the direct path even as record() bumps the model generation after
// every completion. A stale cache would freeze estimates at the first
// generation and diverge from the direct run's decisions.
TEST(CostMemoization, HistoryRecalibrationInvalidatesBetweenDecisions) {
  const Artifacts first = run_cell("dmdas", true, true, 3);
  const Artifacts second = run_cell("dmdas", true, true, 3);
  EXPECT_TRUE(first == second);
  const Artifacts direct = run_cell("dmdas", false, true, 3);
  EXPECT_TRUE(first == direct);
}

// Fault injection stacks retries and blacklisting on top of the cache;
// the memoized and direct paths must keep agreeing byte-for-byte when
// estimates feed the retry/requeue machinery, not just the happy path.
TEST(CostMemoization, MemoizedMatchesDirectUnderFaultInjection) {
  const auto run = [](bool memoize) {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.seed = 13;
    options.noise_cv = 0.3;
    options.failure_model = hw::FailureModel::uniform(0.3);
    options.memoize_costs = memoize;
    core::Runtime rt(p, sched::make_scheduler("dmda"), options);
    workflow::submit_workflow(rt, workflow::make_montage(10),
                              workflow::CodeletLibrary::standard());
    rt.wait_all();
    Artifacts out;
    out.spans_csv = trace::spans_to_csv(rt.tracer());
    out.metrics_json = rt.recorder()->metrics().to_json_string();
    out.metrics_csv = rt.recorder()->metrics().to_csv();
    out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
    out.decisions = rt.recorder()->decisions_jsonl(p);
    return out;
  };
  EXPECT_TRUE(run(true) == run(false));
}

// Batched completion drain under full audit: every scheduler finishes a
// generated workflow with batch_completions + memoize_costs on, with the
// end-of-run validator (race detector, coherence and trace invariants)
// live. Batching is NOT required to be stream-identical to the per-event
// pump — it is required to be *correct*, which is what validate proves.
TEST(BatchedCompletions, ValidateCleanSweepAcrossAllSchedulers) {
  for (const std::string& scheduler : sched::scheduler_names()) {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.seed = 5;
    options.noise_cv = 0.1;
    options.validate = true;
    options.metrics = true;
    options.batch_completions = true;
    options.memoize_costs = true;
    core::Runtime rt(p, sched::make_scheduler(scheduler), options);
    const workflow::Workflow wf = workflow::make_montage(10);
    workflow::submit_workflow(rt, wf, workflow::CodeletLibrary::standard());
    ASSERT_NO_THROW(rt.wait_all()) << scheduler;
    EXPECT_EQ(rt.stats().tasks_completed, wf.tasks().size()) << scheduler;
  }
}

// Batched drain is deterministic in its own right: the same seeded run
// with batching on twice produces identical artifacts (batching may
// reorder relative to the per-event pump, but never relative to itself).
TEST(BatchedCompletions, BatchedRunsAreByteReproducible) {
  const auto run = [] {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.seed = 17;
    options.noise_cv = 0.2;
    options.batch_completions = true;
    core::Runtime rt(p, sched::make_scheduler("work-stealing"), options);
    workflow::submit_workflow(rt, workflow::make_montage(10),
                              workflow::CodeletLibrary::standard());
    rt.wait_all();
    Artifacts out;
    out.spans_csv = trace::spans_to_csv(rt.tracer());
    out.metrics_json = rt.recorder()->metrics().to_json_string();
    out.metrics_csv = rt.recorder()->metrics().to_csv();
    out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
    out.decisions = rt.recorder()->decisions_jsonl(p);
    return out;
  };
  EXPECT_TRUE(run() == run());
}

// Cancel-heavy batched drain: with a per-attempt timeout every dispatch
// arms a watchdog that the completion path cancels (one carcass per
// successful attempt, many landing inside drained batches), and the
// fail-silent hang fraction makes the race go the other way too — the
// watchdog fires and cancels the hung completion event. With
// batch_completions=true this is exactly the drain_ready + lazy-cancel
// interaction under real load. The full audit (validate) plus exact
// completion counts prove no cancelled event delivered and no task was
// lost; a second identical run proves the path is self-reproducible.
TEST(BatchedCompletions, CancelHeavyFaultRunValidatesCleanAndReproduces) {
  const auto run = [] {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.validate = true;
    options.seed = 29;
    options.noise_cv = 0.3;
    options.failure_model = hw::FailureModel::uniform(10.0);
    options.failure_model.set_hang_fraction(0.3);
    options.failure_policy = core::FailurePolicy::Reschedule;
    options.max_attempts = 500;
    options.retry.timeout_s = 5.0;  // generous: successes finish inside it
    options.retry.backoff_base_s = 0.01;
    options.retry.blacklist_after = 3;
    options.retry.probation_s = 1.0;
    options.batch_completions = true;
    options.memoize_costs = true;
    core::Runtime rt(p, sched::make_scheduler("dmda"), options);
    const workflow::Workflow wf = workflow::make_montage(10);
    workflow::submit_workflow(rt, wf, workflow::CodeletLibrary::standard());
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_completed, wf.tasks().size());
    return trace::spans_to_csv(rt.tracer()) +
           rt.recorder()->metrics().to_json_string();
  };
  EXPECT_EQ(run(), run());
}

// Explicit invalidation hook: invalidate_cost_cache() mid-stream must be
// harmless when the platform is unchanged (the refilled cache holds the
// same values), proven by comparing against an uninterrupted run.
TEST(CostMemoization, ExplicitInvalidationIsTransparent) {
  const auto run = [](bool poke) {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.seed = 23;
    core::Runtime rt(p, sched::make_scheduler("mct"), options);
    const workflow::Workflow wf = workflow::make_montage(10);
    workflow::submit_workflow(rt, wf, workflow::CodeletLibrary::standard());
    if (poke) {
      rt.invalidate_cost_cache();
    }
    rt.wait_all();
    return trace::spans_to_csv(rt.tracer());
  };
  EXPECT_EQ(run(true), run(false));
}

// Blacklist transitions must invalidate the memo: quarantine
// (Healthy -> Blacklisted), probation expiry (Blacklisted -> Probation)
// and recovery (Probation -> Healthy) each drop the cache, so no
// estimate computed against the pre-transition health state can be
// served afterwards. The invalidation counter proves each transition
// fired the hook; the stats cross-check proves transitions happened.
TEST(CostMemoization, BlacklistTransitionsInvalidateCache) {
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.seed = 9;
  options.failure_model.set_rate(hw::DeviceType::Gpu, 60.0);
  options.failure_policy = core::FailurePolicy::Reschedule;
  options.max_attempts = 500;
  options.retry.blacklist_after = 2;
  options.retry.probation_s = 2.0;
  options.memoize_costs = true;
  core::Runtime rt(p, sched::make_scheduler("mct"), options);
  const std::uint64_t before = rt.cost_cache().invalidations();
  for (int i = 0; i < 40; ++i) {
    rt.submit("t" + std::to_string(i), hetflow::testing::cpu_gpu_codelet(),
              4e9, {});
  }
  rt.wait_all();
  ASSERT_GT(rt.stats().blacklist_events, 0u);
  // Every quarantine invalidates once, and its matching probation /
  // recovery transition invalidates again — strictly more invalidations
  // than blacklist events.
  EXPECT_GT(rt.cost_cache().invalidations(),
            before + rt.stats().blacklist_events);
}

// The regression the hook closes: a memoized blacklist-heavy run must
// stay byte-identical to the direct-recompute path through quarantine,
// probation and recovery — a stale memo surviving a health transition
// would diverge in the decision log or span stream.
TEST(CostMemoization, MemoizedMatchesDirectUnderBlacklisting) {
  const auto run = [](bool memoize) {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.seed = 19;
    options.noise_cv = 0.2;
    options.failure_model.set_rate(hw::DeviceType::Gpu, 60.0);
    options.failure_policy = core::FailurePolicy::Reschedule;
    options.max_attempts = 500;
    options.retry.blacklist_after = 2;
    options.retry.probation_s = 2.0;
    options.use_history_model = true;
    options.memoize_costs = memoize;
    core::Runtime rt(p, sched::make_scheduler("dmda"), options);
    for (int i = 0; i < 40; ++i) {
      rt.submit("t" + std::to_string(i), hetflow::testing::cpu_gpu_codelet(),
                4e9, {});
    }
    rt.wait_all();
    Artifacts out;
    out.spans_csv = trace::spans_to_csv(rt.tracer());
    out.metrics_json = rt.recorder()->metrics().to_json_string();
    out.metrics_csv = rt.recorder()->metrics().to_csv();
    out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
    out.decisions = rt.recorder()->decisions_jsonl(p);
    return out;
  };
  EXPECT_TRUE(run(true) == run(false));
}

// Capacity hints are pure reservation: a run with
// expected_tasks/expected_data set (even wildly wrong in either
// direction) serializes byte-identically to a run with no hints.
TEST(CapacityHints, HintsNeverChangeResults) {
  const auto run = [](std::size_t tasks_hint, std::size_t data_hint) {
    const hw::Platform p = hw::make_workstation();
    core::RuntimeOptions options;
    options.metrics = true;
    options.seed = 51;
    options.noise_cv = 0.2;
    options.expected_tasks = tasks_hint;
    options.expected_data = data_hint;
    core::Runtime rt(p, sched::make_scheduler("dmda"), options);
    workflow::submit_workflow(rt, workflow::make_montage(12),
                              workflow::CodeletLibrary::standard());
    rt.wait_all();
    return trace::spans_to_csv(rt.tracer()) +
           rt.recorder()->metrics().to_json_string();
  };
  const std::string no_hints = run(0, 0);
  EXPECT_EQ(no_hints, run(10000, 10000));  // over-estimate
  EXPECT_EQ(no_hints, run(3, 2));          // under-estimate
}

}  // namespace
}  // namespace hetflow
