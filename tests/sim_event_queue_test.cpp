#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace hetflow::sim {
namespace {

TEST(EventQueue, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(3.0, [&] { fired.push_back(3); });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(2.0, [&] { fired.push_back(2); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SameTimeFifoTieBreak) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&fired, i] { fired.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_after(0.5, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, RejectsPastAndInvalid) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(0.5, [] {}), util::InternalError);
  EXPECT_THROW(q.schedule_at(2.0, nullptr), util::InternalError);
  EXPECT_THROW(
      q.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      util::InternalError);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, PendingTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), 1.0);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(3.0, [&] { fired.push_back(3.0); });
  q.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockOnEmptyQueue) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_EQ(q.now(), 7.5);
  EXPECT_THROW(q.run_until(5.0), util::InternalError);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      q.schedule_after(1.0, recurse);
    }
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), 99.0);
}

TEST(EventQueue, CancelledHeadDoesNotAdvanceClockInRunUntil) {
  EventQueue q;
  const EventId id = q.schedule_at(1.0, [] {});
  bool fired = false;
  q.schedule_at(5.0, [&] { fired = true; });
  q.cancel(id);
  q.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.now(), 2.0);
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTime) {
  EventQueue q;
  q.schedule_at(4.0, [&] {
    q.schedule_after(0.0, [&] { EXPECT_EQ(q.now(), 4.0); });
  });
  q.run();
  EXPECT_EQ(q.now(), 4.0);
}

TEST(EventQueue, CancelCompactsHeapCarcasses) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule_at(static_cast<double>(i) + 1.0, [] {}));
  }
  EXPECT_TRUE(q.debug_consistent());
  EXPECT_EQ(q.heap_entries(), 1000u);
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  // Lazy deletion with compaction: carcasses never exceed ~half the live
  // events for long, so mass cancellation cannot leak heap entries.
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_LT(q.heap_entries(), 500u);
  EXPECT_TRUE(q.debug_consistent());
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_entries(), 0u);
  EXPECT_EQ(q.heap_carcasses(), 0u);
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueue, HeapStaysBoundedUnderChurn) {
  // Schedule/cancel churn (the failure-injection pattern): the heap must
  // track the live population, not the cancellation history.
  EventQueue q;
  std::vector<EventId> live;
  double when = 1.0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 20; ++i) {
      live.push_back(q.schedule_at(when, [] {}));
      when += 0.5;
    }
    // Cancel all but one of this round's events.
    for (std::size_t i = live.size() - 20; i + 1 < live.size(); ++i) {
      q.cancel(live[i]);
    }
  }
  EXPECT_EQ(q.pending(), 100u);
  EXPECT_TRUE(q.debug_consistent());
  EXPECT_LE(q.heap_entries(), 2 * q.pending() + 8);
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueue, CancelledEntriesSkippedAcrossCompaction) {
  // Interleave cancels with execution so step() crosses both live and
  // carcass entries, before and after a compaction pass.
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i) {
    const double t = static_cast<double>(i) + 1.0;
    ids.push_back(q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); }));
  }
  for (int i = 0; i < 50; i += 2) {  // cancel even slots
    q.cancel(ids[static_cast<std::size_t>(i)]);
  }
  q.run();
  ASSERT_EQ(fired.size(), 25u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i], 2.0 * static_cast<double>(i) + 2.0);
  }
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueue, RunUntilWithCarcassesAtHeadBeyondLimit) {
  // After draining up to `limit`, the heap head is a pile of cancelled
  // carcasses whose timestamps lie beyond the limit. run_until must stop
  // the clock at `limit` (not at a carcass time), leave the live tail
  // pending, and keep the bookkeeping audit green.
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(q.now()); });
  std::vector<EventId> doomed;
  for (int i = 0; i < 64; ++i) {
    doomed.push_back(q.schedule_at(5.0 + 0.01 * i, [] {}));
  }
  bool tail_fired = false;
  q.schedule_at(50.0, [&] { tail_fired = true; });
  // Cancel a prefix only — enough carcasses survive compaction to sit at
  // the head when run_until(2.0) returns.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(q.cancel(doomed[i]));
  }
  EXPECT_TRUE(q.debug_consistent());
  const SimTime reached = q.run_until(2.0);
  EXPECT_EQ(reached, 2.0);
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_FALSE(tail_fired);
  EXPECT_EQ(q.pending(), 45u);  // 44 survivors + the tail event
  EXPECT_TRUE(q.debug_consistent());
  q.run();
  EXPECT_TRUE(tail_fired);
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueue, CompactionMidDrainKeepsRunUntilExact) {
  // A callback that mass-cancels future events forces a compaction while
  // run_until is mid-drain; the remaining schedule must be unaffected.
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventId> future;
  for (int i = 0; i < 200; ++i) {
    future.push_back(q.schedule_at(10.0 + static_cast<double>(i), [] {}));
  }
  q.schedule_at(1.0, [&] {
    fired.push_back(q.now());
    // Cancel 199 of 200 future events: carcasses overwhelm live events
    // and compaction fires inside the drain loop.
    for (std::size_t i = 0; i + 1 < future.size(); ++i) {
      EXPECT_TRUE(q.cancel(future[i]));
    }
    EXPECT_TRUE(q.debug_consistent());
  });
  q.schedule_at(2.0, [&] { fired.push_back(q.now()); });
  const SimTime reached = q.run_until(3.0);
  EXPECT_EQ(reached, 3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(q.pending(), 1u);  // the lone surviving future event
  EXPECT_LT(q.heap_entries(), 100u);
  EXPECT_TRUE(q.debug_consistent());
  q.run();
  EXPECT_EQ(q.now(), 10.0 + 199.0);
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueue, ConsistencyHoldsThroughCancelHeavyDrain) {
  // Audit the bookkeeping invariant at every step of a drain where every
  // other event cancels a later one (the timeout-watchdog pattern: the
  // completion event cancels its watchdog or vice versa).
  EventQueue q;
  std::vector<EventId> watchdogs(100, 0);
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) + 1.0;
    const auto slot = static_cast<std::size_t>(i);
    watchdogs[slot] = q.schedule_at(t + 0.5, [] { FAIL() << "watchdog"; });
    q.schedule_at(t, [&q, &watchdogs, slot] {
      EXPECT_TRUE(q.cancel(watchdogs[slot]));
    });
  }
  while (!q.empty()) {
    ASSERT_TRUE(q.debug_consistent());
    q.step();
  }
  EXPECT_TRUE(q.debug_consistent());
  // Deletion is lazy, so the final cancelled watchdog may linger as a
  // carcass — but every remaining entry must be a carcass, none live.
  EXPECT_EQ(q.heap_entries(), q.heap_carcasses());
  EXPECT_EQ(q.executed(), 100u);
}

class EventStressSweep : public ::testing::TestWithParam<int> {};

TEST_P(EventStressSweep, ManyEventsAllExecuteInOrder) {
  EventQueue q;
  const int n = GetParam();
  std::vector<double> times;
  for (int i = n - 1; i >= 0; --i) {
    q.schedule_at(static_cast<double>(i % 17) + 0.001 * i,
                  [&times, &q] { times.push_back(q.now()); });
  }
  q.run();
  ASSERT_EQ(times.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EventStressSweep,
                         ::testing::Values(10, 1000, 20000));

// Regression: >10^6 sequential `now + dt` hops with a binary-inexact dt.
// Accumulated rounding once pushed a computed deadline a few ulps below
// now() deep into long runs, and schedule_at aborted what was a healthy
// simulation. The clock must stay monotonic and every event must fire.
TEST(EventQueue, MillionSequentialHopsKeepClockMonotonic) {
  EventQueue q;
  constexpr std::uint64_t kEvents = 1'200'000;
  const double dt = 0.1;  // not representable in binary — error accrues
  std::uint64_t fired = 0;
  double last_now = -1.0;
  std::function<void()> hop = [&] {
    EXPECT_GE(q.now(), last_now);
    last_now = q.now();
    if (++fired < kEvents) {
      // Recompute the target from an accumulated product, not from
      // now(): this is the caller-side arithmetic that drifts.
      q.schedule_at(static_cast<double>(fired) * dt, hop);
    }
  };
  q.schedule_at(0.0, hop);
  q.run();
  EXPECT_EQ(fired, kEvents);
  EXPECT_EQ(q.executed(), kEvents);
  EXPECT_NEAR(q.now(), static_cast<double>(kEvents - 1) * dt, 1.0);
}

// The clamp itself: a deadline within rounding slack of now() fires
// immediately at now(); a deadline clearly in the past still fails.
TEST(EventQueue, NearPastWithinSlackClampsToNow) {
  EventQueue q;
  q.schedule_at(1000.0, [] {});
  q.run();
  ASSERT_EQ(q.now(), 1000.0);
  // slack = 1e-9 * |now| = 1e-6 here; an ulp-scale shortfall clamps...
  double fired_at = -1.0;
  q.schedule_at(1000.0 - 1e-7, [&] { fired_at = q.now(); });
  q.run();
  EXPECT_EQ(fired_at, 1000.0);
  EXPECT_EQ(q.now(), 1000.0);
  // ...but a real gap is still an upstream logic bug.
  EXPECT_THROW(q.schedule_at(1000.0 - 1e-3, [] {}), util::InternalError);
}

// --- drain_ready: the batched completion drain -------------------------

TEST(EventQueueDrain, DrainsExactlyTheSameTimestampBatchInFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(1.0, [&] { fired.push_back(0); });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(1.0, [&] { fired.push_back(2); });
  q.schedule_at(2.0, [&] { fired.push_back(9); });
  EXPECT_EQ(q.drain_ready(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), 1.0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.drain_ready(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 9}));
  EXPECT_EQ(q.now(), 2.0);
}

TEST(EventQueueDrain, ReturnsZeroOnEmptyQueue) {
  EventQueue q;
  EXPECT_EQ(q.drain_ready(), 0u);
  q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_EQ(q.drain_ready(), 0u);  // drained queue stays drained
}

TEST(EventQueueDrain, SkipsCarcassesAtHeadAndInsideTheBatch) {
  EventQueue q;
  std::vector<int> fired;
  const EventId head = q.schedule_at(1.0, [&] { fired.push_back(-1); });
  q.schedule_at(1.0, [&] { fired.push_back(0); });
  const EventId mid = q.schedule_at(1.0, [&] { fired.push_back(-2); });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.cancel(head);
  q.cancel(mid);
  EXPECT_EQ(q.drain_ready(), 2u);  // counts executed events, not carcasses
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueueDrain, ZeroDelayEventsScheduledDuringDrainJoinTheBatch) {
  // A callback scheduling at the batch timestamp (the requeue /
  // immediate-retry pattern) must run within the same drain call — that
  // is what makes drain_ready equivalent to the step() loop, which would
  // also reach that event before the clock moves.
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(1.0, [&] {
    fired.push_back(0);
    q.schedule_after(0.0, [&] { fired.push_back(2); });
  });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(3.0, [&] { fired.push_back(9); });
  EXPECT_EQ(q.drain_ready(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), 1.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueDrain, CallbackCancellingBatchMemberSuppressesIt) {
  // The watchdog-vs-completion race inside one timestamp: the first
  // event cancels the second; drain_ready must not run the corpse.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  ids.push_back(q.schedule_at(1.0, [&] {
    fired.push_back(0);
    EXPECT_TRUE(q.cancel(ids[1]));
  }));
  ids.push_back(q.schedule_at(1.0, [&] { fired.push_back(-1); }));
  ids.push_back(q.schedule_at(1.0, [&] { fired.push_back(2); }));
  EXPECT_EQ(q.drain_ready(), 2u);
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueueDrain, FullRunMatchesStepLoopEventForEvent) {
  // Property: over a schedule dense with same-time ties, cancellations
  // and mid-run insertions, the drain_ready loop executes the exact same
  // event sequence as the step() loop.
  const auto build_and_run = [](bool batched) {
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 300; ++i) {
      const double t = static_cast<double>(i % 7) + 1.0;  // heavy ties
      ids.push_back(q.schedule_at(t, [&order, &q, i] {
        order.push_back(i);
        if (i % 11 == 0) {
          // Mid-run insertion at the current batch timestamp.
          q.schedule_after(0.0, [&order, i] { order.push_back(1000 + i); });
        }
      }));
    }
    for (int i = 0; i < 300; i += 5) {
      q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    if (batched) {
      while (q.drain_ready() > 0) {
      }
    } else {
      while (q.step()) {
      }
    }
    return order;
  };
  const std::vector<int> stepped = build_and_run(false);
  const std::vector<int> drained = build_and_run(true);
  EXPECT_EQ(stepped, drained);
  EXPECT_FALSE(stepped.empty());
}

TEST(EventQueueDrain, MutualCancellationRacesWithinOneBatch) {
  // Both directions of the watchdog/completion race at one timestamp:
  // pair A's first-by-seq member cancels its partner ahead in the batch,
  // pair B's first member cancels a partner that sits even further down.
  // Whichever side fires first must win, and the loser must never
  // deliver — across several pairs in a single drained batch.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids(6);
  ids[0] = q.schedule_at(2.0, [&] {  // "completion" A cancels watchdog A
    fired.push_back(0);
    EXPECT_TRUE(q.cancel(ids[1]));
  });
  ids[1] = q.schedule_at(2.0, [&] { fired.push_back(-1); });
  ids[2] = q.schedule_at(2.0, [&] {  // "watchdog" B cancels completion B
    fired.push_back(2);
    EXPECT_TRUE(q.cancel(ids[3]));
  });
  ids[3] = q.schedule_at(2.0, [&] { fired.push_back(-3); });
  ids[4] = q.schedule_at(2.0, [&] {  // cancel of an already-run event: no-op
    fired.push_back(4);
    EXPECT_FALSE(q.cancel(ids[0]));
  });
  ids[5] = q.schedule_at(2.0, [&] { fired.push_back(5); });
  EXPECT_EQ(q.drain_ready(), 4u);
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 4, 5}));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueueDrain, MidBatchCancelStormTriggersCompactionSafely) {
  // A batch member cancels a large population of future events, tripping
  // the carcass-ratio compaction *inside* the drain loop. The remaining
  // same-timestamp members must still run FIFO and later events survive.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> future;
  for (int i = 0; i < 64; ++i) {
    future.push_back(
        q.schedule_at(5.0, [&fired, i] { fired.push_back(100 + i); }));
  }
  q.schedule_at(1.0, [&] {
    fired.push_back(0);
    for (std::size_t i = 0; i < future.size(); i += 2) {
      EXPECT_TRUE(q.cancel(future[i]));  // 32 cancels -> compact() fires
    }
  });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(1.0, [&] { fired.push_back(2); });
  EXPECT_EQ(q.drain_ready(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.debug_consistent());
  EXPECT_EQ(q.drain_ready(), 32u);  // surviving half of the future batch
  EXPECT_EQ(q.now(), 5.0);
  EXPECT_TRUE(q.debug_consistent());
}

TEST(EventQueueDrain, ConsistencyHoldsThroughCancelHeavyDrainLoop) {
  // Property: a drain loop over a schedule dense with same-time ties,
  // pre-drain cancels and in-batch cancels keeps the slab/heap/carcass
  // accounting consistent after every single drain_ready call.
  EventQueue q;
  std::vector<EventId> ids;
  std::size_t ran = 0;
  for (int i = 0; i < 400; ++i) {
    const double t = static_cast<double>(i % 5) + 1.0;
    ids.push_back(q.schedule_at(t, [&q, &ids, &ran, i] {
      ++ran;
      // Every third callback cancels a later sibling (some already dead:
      // cancel() returning false on those must stay harmless).
      if (i % 3 == 0) {
        q.cancel(ids[static_cast<std::size_t>((i + 7) % 400)]);
      }
    }));
  }
  for (int i = 0; i < 400; i += 4) {
    q.cancel(ids[static_cast<std::size_t>(i)]);
  }
  ASSERT_TRUE(q.debug_consistent());
  std::size_t total = 0;
  while (std::size_t n = q.drain_ready()) {
    total += n;
    ASSERT_TRUE(q.debug_consistent());
  }
  EXPECT_EQ(total, ran);
  EXPECT_GT(total, 0u);
  EXPECT_EQ(q.pending(), 0u);
}

// Slab slot reuse must never resurrect a cancelled id: the generation
// stamp in the EventId changes when the slot is recycled.
TEST(EventQueue, RecycledSlotDoesNotResurrectOldId) {
  EventQueue q;
  const EventId stale = q.schedule_at(1.0, [] {});
  ASSERT_TRUE(q.cancel(stale));
  // Reuses the freed slot (same index, bumped generation).
  bool fired = false;
  const EventId fresh = q.schedule_at(2.0, [&] { fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.cancel(stale));  // stale id must not hit the new event
  q.run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace hetflow::sim
