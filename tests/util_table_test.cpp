#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace hetflow::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| x      | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("+--------+-------+"), std::string::npos);
}

TEST(Table, WidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), InternalError);
}

TEST(Table, MixedRowFormatsNumbers) {
  Table t({"label", "v1", "v2"});
  t.add_row_mixed("row", {1.5, 0.25}, "%.2f");
  EXPECT_NE(t.render().find("| row   | 1.50 | 0.25 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, MixedRowWidthEnforced) {
  Table t({"label", "v1"});
  EXPECT_THROW(t.add_row_mixed("x", {1.0, 2.0}), InternalError);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), t.render());
}

TEST(Table, HeaderOnlyTable) {
  Table t({"lonely"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| lonely |"), std::string::npos);
}

}  // namespace
}  // namespace hetflow::util
