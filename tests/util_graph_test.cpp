#include "util/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hetflow::util {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, BasicDegrees) {
  const Digraph g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.sources(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<std::size_t>{3}));
}

TEST(Digraph, RejectsSelfLoopAndBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), InternalError);
  EXPECT_THROW(g.add_edge(0, 5), InternalError);
  EXPECT_THROW(g.successors(9), InternalError);
}

TEST(Digraph, AddNodeGrows) {
  Digraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, ResizeCannotShrink) {
  Digraph g(3);
  EXPECT_THROW(g.resize(2), InternalError);
}

TEST(Digraph, TopologicalOrderValid) {
  const Digraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t s : g.successors(n)) {
      EXPECT_LT(position[n], position[s]);
    }
  }
}

TEST(Digraph, TopologicalOrderDeterministicSmallestFirst) {
  Digraph g(3);  // no edges: expect 0,1,2
  EXPECT_EQ(g.topological_order(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.has_cycle());
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_THROW(g.topological_order(), InvalidArgument);
}

TEST(Digraph, Levels) {
  const Digraph g = diamond();
  const auto levels = g.levels();
  EXPECT_EQ(levels, (std::vector<std::size_t>{0, 1, 1, 2}));
}

TEST(Digraph, CriticalPathNodeWeightsOnly) {
  const Digraph g = diamond();
  std::vector<std::size_t> path;
  const double length = g.critical_path({1.0, 5.0, 2.0, 1.0}, &path);
  EXPECT_DOUBLE_EQ(length, 7.0);  // 0 -> 1 -> 3
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Digraph, CriticalPathWithEdgeWeights) {
  const Digraph g = diamond();
  // Edge 0->2 is expensive, pulling the critical path through node 2.
  const auto edge_w = [](std::size_t a, std::size_t b) {
    return (a == 0 && b == 2) ? 10.0 : 0.0;
  };
  std::vector<std::size_t> path;
  const double length =
      g.critical_path({1.0, 5.0, 2.0, 1.0}, edge_w, &path);
  EXPECT_DOUBLE_EQ(length, 14.0);  // 1 + 10 + 2 + 1
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(Digraph, ReachableFrom) {
  const Digraph g = diamond();
  const auto reach = g.reachable_from(1);
  EXPECT_FALSE(reach[0]);
  EXPECT_FALSE(reach[1]);
  EXPECT_FALSE(reach[2]);
  EXPECT_TRUE(reach[3]);
}

TEST(Digraph, TransitiveReductionRemovesShortcut) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // implied by 0->1->2
  EXPECT_EQ(g.transitive_reduction(), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.successors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(g.in_degree(2), 1u);
}

TEST(Digraph, TransitiveReductionCollapsesDuplicates) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.transitive_reduction(), 1u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, TransitiveReductionKeepsDiamond) {
  Digraph g = diamond();
  EXPECT_EQ(g.transitive_reduction(), 0u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(Digraph, UpwardRanksDiamond) {
  const Digraph g = diamond();
  const auto zero_edge = [](std::size_t, std::size_t) { return 0.0; };
  const auto ranks = g.upward_ranks({1.0, 5.0, 2.0, 1.0}, zero_edge);
  EXPECT_DOUBLE_EQ(ranks[3], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 6.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
  EXPECT_DOUBLE_EQ(ranks[0], 7.0);
}

TEST(Digraph, DownwardRanksDiamond) {
  const Digraph g = diamond();
  const auto zero_edge = [](std::size_t, std::size_t) { return 0.0; };
  const auto ranks = g.downward_ranks({1.0, 5.0, 2.0, 1.0}, zero_edge);
  EXPECT_DOUBLE_EQ(ranks[0], 0.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
  EXPECT_DOUBLE_EQ(ranks[3], 6.0);
}

TEST(Digraph, UpwardRankIsCriticalPathAtSource) {
  // For a single-source DAG, rank_u(source) == critical path length.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const std::vector<double> w = {2.0, 3.0, 7.0, 1.0, 4.0};
  const auto zero_edge = [](std::size_t, std::size_t) { return 0.0; };
  EXPECT_DOUBLE_EQ(g.upward_ranks(w, zero_edge)[0], g.critical_path(w));
}

class RandomDagSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Random DAG with edges only from lower to higher ids (guaranteed
  /// acyclic).
  Digraph make_random_dag(Rng& rng, std::size_t n, double p) {
    Digraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(p)) {
          g.add_edge(i, j);
        }
      }
    }
    return g;
  }
};

TEST_P(RandomDagSweep, TopoOrderIsAlwaysValid) {
  Rng rng(GetParam());
  const Digraph g = make_random_dag(rng, 60, 0.08);
  EXPECT_FALSE(g.has_cycle());
  const auto order = g.topological_order();
  std::vector<std::size_t> position(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    for (std::size_t s : g.successors(n)) {
      EXPECT_LT(position[n], position[s]);
    }
  }
}

TEST_P(RandomDagSweep, TransitiveReductionPreservesReachability) {
  Rng rng(GetParam());
  Digraph g = make_random_dag(rng, 40, 0.12);
  std::vector<std::vector<bool>> before;
  before.reserve(g.node_count());
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    before.push_back(g.reachable_from(n));
  }
  g.transitive_reduction();
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    EXPECT_EQ(g.reachable_from(n), before[n]) << "node " << n;
  }
}

TEST_P(RandomDagSweep, CriticalPathDominatesEveryNodeWeight) {
  Rng rng(GetParam());
  const Digraph g = make_random_dag(rng, 50, 0.1);
  std::vector<double> weights(g.node_count());
  for (double& w : weights) {
    w = rng.uniform(0.1, 10.0);
  }
  const double cp = g.critical_path(weights);
  for (double w : weights) {
    EXPECT_GE(cp, w);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSweep,
                         ::testing::Values(1ull, 7ull, 99ull, 31337ull));

}  // namespace
}  // namespace hetflow::util
