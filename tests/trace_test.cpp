#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "hw/presets.hpp"
#include "sched/mct.hpp"
#include "trace/report.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace hetflow::trace {
namespace {

TEST(Tracer, DisabledDropsSpans) {
  Tracer tracer(false);
  tracer.add(Span{0, "t", 0, 0.0, 1.0, SpanKind::Exec});
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_FALSE(tracer.enabled());
}

TEST(Tracer, CollectsSpans) {
  Tracer tracer;
  tracer.add(Span{1, "a", 0, 0.0, 1.0, SpanKind::Exec});
  tracer.add(Span{2, "b", 1, 0.5, 2.0, SpanKind::FailedExec});
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].duration(), 1.5);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, ChromeJsonIsValidJson) {
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "gemm", 0, 0.0, 0.5, SpanKind::Exec});
  tracer.add(Span{2, "fft", 4, 0.1, 0.3, SpanKind::FailedExec});
  const std::string json = tracer.to_chrome_json(p);
  const util::Json doc = util::Json::parse(json);
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  // 5 thread-name metadata events (one per device) + 2 spans.
  EXPECT_EQ(events.size(), p.device_count() + 2);
  // Find the gemm event and check its fields.
  bool found = false;
  for (const auto& event : events) {
    if (event.contains("name") && event.at("name").as_string() == "gemm") {
      found = true;
      EXPECT_EQ(event.at("ph").as_string(), "X");
      EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 0.5e6);
      EXPECT_EQ(event.at("args").at("kind").as_string(), "exec");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, AsciiGanttShowsDeviceRows) {
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "t", 0, 0.0, 1.0, SpanKind::Exec});
  tracer.add(Span{2, "u", 4, 0.0, 0.5, SpanKind::FailedExec});
  const std::string gantt = tracer.ascii_gantt(p, 40);
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);
  EXPECT_NE(gantt.find("gpu0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('x'), std::string::npos);
}

TEST(Tracer, EmptyGantt) {
  const hw::Platform p = hw::make_workstation();
  const Tracer tracer;
  EXPECT_EQ(tracer.ascii_gantt(p), "(empty trace)\n");
}

TEST(Tracer, InstantRunGanttRendersWithoutDividingByZero) {
  // Every span is zero-length at t = 0, so the makespan is 0; the chart
  // must still render device rows (marks in the first column) instead of
  // dividing by zero or degrading to "(empty trace)".
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "t", 0, 0.0, 0.0, SpanKind::Exec});
  tracer.add(Span{2, "u", 4, 0.0, 0.0, SpanKind::FailedExec});
  const std::string gantt = tracer.ascii_gantt(p, 40);
  EXPECT_EQ(gantt.find("(empty trace)"), std::string::npos);
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('x'), std::string::npos);
  EXPECT_EQ(gantt.find("inf"), std::string::npos);
  EXPECT_EQ(gantt.find("nan"), std::string::npos);
}

TEST(Report, UtilizationAggregates) {
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "a", 0, 0.0, 1.0, SpanKind::Exec});
  tracer.add(Span{2, "b", 0, 1.0, 2.0, SpanKind::Exec});
  tracer.add(Span{3, "c", 0, 2.0, 2.5, SpanKind::FailedExec});
  tracer.add(Span{4, "d", 4, 0.0, 4.0, SpanKind::Exec});
  const auto utils = utilization(tracer, p);
  ASSERT_EQ(utils.size(), p.device_count());
  EXPECT_EQ(utils[0].task_count, 2u);
  EXPECT_EQ(utils[0].failed_count, 1u);
  EXPECT_DOUBLE_EQ(utils[0].busy_seconds, 2.5);
  EXPECT_DOUBLE_EQ(utils[0].utilization, 2.5 / 4.0);
  // Failed-attempt time is busy but not useful: the 0.5 s FailedExec span
  // lands in wasted, the two Exec spans in useful.
  EXPECT_DOUBLE_EQ(utils[0].useful_seconds, 2.0);
  EXPECT_DOUBLE_EQ(utils[0].wasted_seconds, 0.5);
  EXPECT_DOUBLE_EQ(utils[0].useful_utilization, 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(utils[0].wasted_utilization, 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(utils[4].utilization, 1.0);
  EXPECT_DOUBLE_EQ(utils[4].wasted_seconds, 0.0);
  EXPECT_EQ(utils[1].task_count, 0u);
}

TEST(Report, UsefulPlusWastedEqualsBusy) {
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "a", 0, 0.0, 1.0, SpanKind::Exec});
  tracer.add(Span{2, "a", 0, 1.0, 1.75, SpanKind::FailedExec});
  tracer.add(Span{2, "a", 0, 1.75, 2.75, SpanKind::Exec});
  tracer.add(Span{3, "o", 0, 2.75, 3.0, SpanKind::Overhead});
  const auto utils = utilization(tracer, p);
  EXPECT_DOUBLE_EQ(utils[0].useful_seconds + utils[0].wasted_seconds,
                   utils[0].busy_seconds);
  EXPECT_DOUBLE_EQ(utils[0].useful_seconds, 2.0);
  EXPECT_DOUBLE_EQ(utils[0].wasted_seconds, 1.0);  // retry + overhead
  EXPECT_DOUBLE_EQ(utils[0].useful_utilization + utils[0].wasted_utilization,
                   utils[0].utilization);
}

TEST(Report, InjectedFailuresShowUpAsWastedTime) {
  // End-to-end regression for the useful/wasted split: a run with fault
  // injection must report non-zero wasted time on the device that hosted
  // the failed attempts, and useful + wasted must still cover busy.
  const hw::Platform p = hw::make_cpu_only(1);
  core::RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(2.0);
  options.failure_policy = core::FailurePolicy::RetrySameDevice;
  options.seed = 7;
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  for (int i = 0; i < 10; ++i) {
    rt.submit(util::format("t%d", i), hetflow::testing::cpu_only_codelet(),
              3e9, {});
  }
  rt.wait_all();
  ASSERT_GT(rt.stats().failed_attempts, 0u);
  const auto utils = utilization(rt.tracer(), p);
  EXPECT_GT(utils[0].wasted_seconds, 0.0);
  EXPECT_GT(utils[0].useful_seconds, 0.0);
  EXPECT_DOUBLE_EQ(utils[0].useful_seconds + utils[0].wasted_seconds,
                   utils[0].busy_seconds);
  const std::string table = utilization_report(rt.tracer(), p);
  EXPECT_NE(table.find("useful%"), std::string::npos);
}

TEST(Report, SpansToCsv) {
  Tracer tracer;
  tracer.add(Span{3, "ge,mm", 1, 0.25, 0.75, SpanKind::Exec});
  tracer.add(Span{4, "fft", 0, 1.0, 1.5, SpanKind::FailedExec});
  const std::string csv = spans_to_csv(tracer);
  EXPECT_NE(csv.find("task,name,device,start_s,end_s,kind"),
            std::string::npos);
  EXPECT_NE(csv.find("3,\"ge,mm\",1,0.250000000,0.750000000,exec"),
            std::string::npos);
  EXPECT_NE(csv.find("4,fft,0,1.000000000,1.500000000,failed"),
            std::string::npos);
}

TEST(Report, RenderedTableMentionsDevices) {
  const hw::Platform p = hw::make_workstation();
  Tracer tracer;
  tracer.add(Span{1, "a", 0, 0.0, 1.0, SpanKind::Exec});
  const std::string table = utilization_report(tracer, p);
  EXPECT_NE(table.find("cpu0"), std::string::npos);
  EXPECT_NE(table.find("useful%"), std::string::npos);
  EXPECT_NE(table.find("wasted%"), std::string::npos);
}

}  // namespace
}  // namespace hetflow::trace
