// Block partitioning of data handles (StarPU-filter style).
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;
using hetflow::testing::exec_windows;

struct PartitionTest : ::testing::Test {
  PartitionTest()
      : platform(hw::make_cpu_only(4)),
        rt(platform, sched::make_scheduler("mct")) {}

  hw::Platform platform;
  Runtime rt;
  CodeletPtr codelet = cpu_only_codelet();
};

TEST_F(PartitionTest, ChildrenSizesSumToParent) {
  const auto parent = rt.register_data("blob", 1000);
  const auto children = rt.partition_data(parent, 3);
  ASSERT_EQ(children.size(), 3u);
  std::uint64_t total = 0;
  for (data::DataId child : children) {
    total += rt.data().registry().handle(child).bytes;
  }
  EXPECT_EQ(total, 1000u);
  // Remainder lands on the last child: 333 + 333 + 334.
  EXPECT_EQ(rt.data().registry().handle(children[2]).bytes, 334u);
  EXPECT_TRUE(rt.is_partitioned(parent));
}

TEST_F(PartitionTest, ParentAccessRejectedWhilePartitioned) {
  const auto parent = rt.register_data("blob", 1024);
  rt.partition_data(parent, 2);
  EXPECT_THROW(
      rt.submit("bad", codelet, 1e9, {{parent, data::AccessMode::Read}}),
      util::InvalidArgument);
}

TEST_F(PartitionTest, ChildAccessRejectedAfterUnpartition) {
  const auto parent = rt.register_data("blob", 1024);
  const auto children = rt.partition_data(parent, 2);
  rt.unpartition_data(parent);
  EXPECT_THROW(rt.submit("bad", codelet, 1e9,
                         {{children[0], data::AccessMode::Read}}),
               util::InvalidArgument);
  EXPECT_FALSE(rt.is_partitioned(parent));
}

TEST_F(PartitionTest, DoublePartitionAndBadUnpartitionRejected) {
  const auto parent = rt.register_data("blob", 1024);
  rt.partition_data(parent, 2);
  EXPECT_THROW(rt.partition_data(parent, 2), util::InvalidArgument);
  rt.unpartition_data(parent);
  EXPECT_THROW(rt.unpartition_data(parent), util::InvalidArgument);
  const auto other = rt.register_data("other", 64);
  EXPECT_THROW(rt.unpartition_data(other), util::InvalidArgument);
}

TEST_F(PartitionTest, BlockWorkersRunInParallel) {
  const auto parent = rt.register_data("matrix", 4096);
  const auto writer =
      rt.submit("init", codelet, 1e9, {{parent, data::AccessMode::Write}});
  const auto children = rt.partition_data(parent, 4);
  std::vector<TaskId> workers;
  for (std::size_t i = 0; i < children.size(); ++i) {
    workers.push_back(
        rt.submit(util::format("block%zu", i), codelet, 6e9,
                  {{children[i], data::AccessMode::ReadWrite}}));
  }
  // Block workers order after the parent's writer but not each other.
  for (TaskId id : workers) {
    EXPECT_EQ(rt.task(id).dependencies, (std::vector<TaskId>{writer}));
  }
  rt.unpartition_data(parent);
  const auto reader =
      rt.submit("gather", codelet, 1e9, {{parent, data::AccessMode::Read}});
  // Gather orders after every block worker plus the (transitively
  // implied) original writer of the parent.
  EXPECT_EQ(rt.task(reader).dependencies.size(), workers.size() + 1);
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  // All four blocks overlapped in time on the 4 cores.
  for (std::size_t i = 1; i < workers.size(); ++i) {
    EXPECT_LT(windows.at(workers[i]).first,
              windows.at(workers[0]).second);
  }
  // Gather ran after every worker.
  for (TaskId id : workers) {
    EXPECT_GE(windows.at(reader).first, windows.at(id).second - 1e-9);
  }
}

TEST_F(PartitionTest, PartitionSpeedsUpBlockedUpdate) {
  // Monolithic RW updates serialize; partitioned block updates do not.
  double monolithic = 0.0;
  double partitioned = 0.0;
  {
    Runtime mono(platform, sched::make_scheduler("mct"));
    const auto d = mono.register_data("m", 4096);
    for (int i = 0; i < 4; ++i) {
      mono.submit(util::format("u%d", i), codelet, 6e9,
                  {{d, data::AccessMode::ReadWrite}});
    }
    mono.wait_all();
    monolithic = mono.stats().makespan_s;
  }
  {
    Runtime part(platform, sched::make_scheduler("mct"));
    const auto d = part.register_data("m", 4096);
    const auto children = part.partition_data(d, 4);
    for (int i = 0; i < 4; ++i) {
      part.submit(util::format("u%d", i), codelet, 6e9,
                  {{children[static_cast<std::size_t>(i)],
                    data::AccessMode::ReadWrite}});
    }
    part.unpartition_data(d);
    part.wait_all();
    partitioned = part.stats().makespan_s;
  }
  EXPECT_LT(partitioned, monolithic / 2.5);
}

TEST_F(PartitionTest, RepartitionAfterUnpartitionAllowed) {
  const auto parent = rt.register_data("blob", 1024);
  rt.partition_data(parent, 2);
  rt.unpartition_data(parent);
  const auto second = rt.partition_data(parent, 4);
  EXPECT_EQ(second.size(), 4u);
  rt.unpartition_data(parent);
  rt.submit("after", codelet, 1e8, {{parent, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 1u);
}

TEST_F(PartitionTest, SinglePartBehavesLikeAlias) {
  const auto parent = rt.register_data("blob", 100);
  const auto children = rt.partition_data(parent, 1);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(rt.data().registry().handle(children[0]).bytes, 100u);
}

TEST_F(PartitionTest, InvalidArgumentsRejected) {
  const auto parent = rt.register_data("blob", 100);
  EXPECT_THROW(rt.partition_data(parent, 0), util::InternalError);
  EXPECT_THROW(rt.partition_data(999, 2), util::InternalError);
}

}  // namespace
}  // namespace hetflow::core
