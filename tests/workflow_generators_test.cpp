#include "workflow/generators.hpp"

#include <gtest/gtest.h>

#include "workflow/codelets.hpp"

namespace hetflow::workflow {
namespace {

TEST(Workflow, BuilderAndValidation) {
  Workflow w("manual");
  const auto in = w.add_file("in", 100);
  const auto out = w.add_file("out", 200);
  w.add_task("t", "compute", 1e9, {in}, {out});
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.task_count(), 1u);
  EXPECT_EQ(w.file_count(), 2u);
  EXPECT_EQ(w.total_bytes(), 300u);
  EXPECT_DOUBLE_EQ(w.total_flops(), 1e9);
  EXPECT_EQ(w.producer_of(out), 0u);
  EXPECT_EQ(w.producer_of(in), Workflow::npos);
}

TEST(Workflow, RejectsMultipleProducers) {
  Workflow w("bad");
  const auto f = w.add_file("f", 1);
  w.add_task("a", "compute", 1.0, {}, {f});
  w.add_task("b", "compute", 1.0, {}, {f});
  EXPECT_THROW(w.validate(), util::InvalidArgument);
}

TEST(Workflow, RejectsBadFileIndices) {
  Workflow w("bad");
  w.add_task("a", "compute", 1.0, {7}, {});
  EXPECT_THROW(w.validate(), util::InvalidArgument);
}

TEST(Workflow, DepthAndWidth) {
  Workflow w("shape");
  const auto a = w.add_file("a", 1);
  const auto b = w.add_file("b", 1);
  const auto c = w.add_file("c", 1);
  w.add_task("src", "compute", 1.0, {}, {a});
  w.add_task("l", "compute", 1.0, {a}, {b});
  w.add_task("r", "compute", 1.0, {a}, {c});
  w.add_task("sink", "compute", 1.0, {b, c}, {});
  EXPECT_EQ(w.depth(), 3u);
  EXPECT_EQ(w.max_width(), 2u);
}

TEST(Montage, ShapeMatchesPublishedStructure) {
  const Workflow w = make_montage(16);
  w.validate();
  // 16 project + 29 diffs + concat + bgmodel + 16 background + imgtbl +
  // add + shrink + jpeg.
  EXPECT_EQ(w.task_count(), 16u + 29u + 1u + 1u + 16u + 1u + 1u + 1u + 1u);
  EXPECT_EQ(w.depth(), 9u);
  EXPECT_EQ(w.max_width(), 29u);
  EXPECT_EQ(w.name(), "montage-16");
}

TEST(Montage, ScaleMultipliesWork) {
  const Workflow small = make_montage(8, 1.0);
  const Workflow big = make_montage(8, 3.0);
  EXPECT_NEAR(big.total_flops() / small.total_flops(), 3.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(big.total_bytes()) /
                  static_cast<double>(small.total_bytes()),
              3.0, 0.01);
}

TEST(Montage, RejectsTooFewTiles) {
  EXPECT_THROW(make_montage(1), util::InternalError);
}

TEST(Epigenomics, ShapeAndKinds) {
  const Workflow w = make_epigenomics(2, 3);
  w.validate();
  // per lane: split + 3*(4 chain stages) + merge = 14; global: 3.
  EXPECT_EQ(w.task_count(), 2u * 14u + 3u);
  const CodeletLibrary lib = CodeletLibrary::standard();
  for (const WorkflowTask& task : w.tasks()) {
    EXPECT_TRUE(lib.contains(task.kind)) << task.kind;
  }
  EXPECT_EQ(w.depth(), 9u);  // split,4 chain,laneMerge,global,maq,pileup
}

TEST(Cybershake, Shape) {
  const Workflow w = make_cybershake(3, 10);
  w.validate();
  // per site: 2 extract + 10 synth + 10 peak + 2 zips = 24.
  EXPECT_EQ(w.task_count(), 3u * 24u);
  EXPECT_EQ(w.max_width(), 33u);  // 30 peak-calcs + 3 per-site ZipSeis on one level
}

TEST(Ligo, Shape) {
  const Workflow w = make_ligo(10, 4);
  w.validate();
  // 10 bank + 10 inspiral + 3 thinca + 3 trig + 1 sire.
  EXPECT_EQ(w.task_count(), 27u);
  EXPECT_EQ(w.depth(), 5u);
}

TEST(Sipht, Shape) {
  const Workflow w = make_sipht(4, 6);
  w.validate();
  // per region: 6 patser + concat + 6 analyses + srna = 14; final: 1.
  EXPECT_EQ(w.task_count(), 4u * 14u + 1u);
  EXPECT_EQ(w.depth(), 4u);  // patser -> concat -> srna -> annotate
  EXPECT_FALSE(w.task_graph().has_cycle());
  const CodeletLibrary lib = CodeletLibrary::standard();
  for (const WorkflowTask& task : w.tasks()) {
    EXPECT_TRUE(lib.contains(task.kind)) << task.kind;
  }
}

TEST(Sipht, WideThenPointShape) {
  const Workflow w = make_sipht(3, 12);
  // The widest level holds every region's independent analyses.
  EXPECT_GE(w.max_width(), 3u * 12u);
  // Exactly one sink task (the final annotation).
  EXPECT_EQ(w.task_graph().sinks().size(), 1u);
}

TEST(RandomLayered, ShapeAndDeterminism) {
  const Workflow a = make_random_layered(5, 8, 1.0, 42);
  const Workflow b = make_random_layered(5, 8, 1.0, 42);
  a.validate();
  EXPECT_EQ(a.task_count(), 40u);
  EXPECT_EQ(a.depth(), 5u);
  // Deterministic in the seed.
  EXPECT_EQ(a.total_flops(), b.total_flops());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  const Workflow c = make_random_layered(5, 8, 1.0, 43);
  EXPECT_NE(a.total_flops(), c.total_flops());
}

TEST(RandomLayered, CcrScalesFileSizes) {
  const Workflow low = make_random_layered(4, 6, 0.1, 7);
  const Workflow high = make_random_layered(4, 6, 10.0, 7);
  EXPECT_DOUBLE_EQ(low.total_flops(), high.total_flops());
  EXPECT_NEAR(static_cast<double>(high.total_bytes()) /
                  static_cast<double>(low.total_bytes()),
              100.0, 1.0);
}

TEST(ForkJoin, ShapeAndSkew) {
  const Workflow w = make_fork_join(6, 3, 0.0, 1);
  w.validate();
  EXPECT_EQ(w.task_count(), 3u * 7u);  // 6 branches + join, per stage
  EXPECT_EQ(w.depth(), 6u);
  EXPECT_EQ(w.max_width(), 6u);
  // sigma = 0 -> all branch tasks equal cost.
  const Workflow skewed = make_fork_join(6, 1, 1.2, 1);
  double lo = 1e300;
  double hi = 0.0;
  for (const WorkflowTask& task : skewed.tasks()) {
    if (task.kind == "compute") {
      lo = std::min(lo, task.flops);
      hi = std::max(hi, task.flops);
    }
  }
  EXPECT_GT(hi / lo, 2.0);
}

TEST(Wavefront, Shape) {
  const Workflow w = make_wavefront(4);
  w.validate();
  EXPECT_EQ(w.task_count(), 16u);
  EXPECT_EQ(w.depth(), 7u);   // 2n-1 anti-diagonals
  EXPECT_EQ(w.max_width(), 4u);
}

TEST(ChainAndBag, Shapes) {
  const Workflow chain = make_chain(10, 1e6, 64);
  chain.validate();
  EXPECT_EQ(chain.depth(), 10u);
  EXPECT_EQ(chain.max_width(), 1u);
  const Workflow bag = make_bag(10, 1e6, 64);
  bag.validate();
  EXPECT_EQ(bag.depth(), 1u);
  EXPECT_EQ(bag.max_width(), 10u);
}

TEST(Describe, MentionsNameAndCounts) {
  const std::string text = make_montage(8).describe();
  EXPECT_NE(text.find("montage-8"), std::string::npos);
  EXPECT_NE(text.find("tasks"), std::string::npos);
}

TEST(CodeletLibrary, StandardCoversGeneratorKinds) {
  const CodeletLibrary lib = CodeletLibrary::standard();
  EXPECT_GT(lib.size(), 25u);
  for (const Workflow& w :
       {make_montage(4), make_epigenomics(1, 2), make_cybershake(1, 2),
        make_ligo(3, 2), make_wavefront(2), make_chain(2, 1.0, 1),
        make_random_layered(2, 2, 1.0, 1)}) {
    for (const WorkflowTask& task : w.tasks()) {
      EXPECT_TRUE(lib.contains(task.kind))
          << w.name() << " kind " << task.kind;
    }
  }
}

TEST(CodeletLibrary, GetOrGenericFallsBack) {
  const CodeletLibrary lib = CodeletLibrary::standard();
  EXPECT_THROW(lib.get("no-such-kind"), util::InvalidArgument);
  const core::CodeletPtr generic = lib.get_or_generic("no-such-kind");
  EXPECT_EQ(generic->name(), "generic");
}

TEST(CodeletLibrary, RegisterReplaces) {
  CodeletLibrary lib;
  EXPECT_FALSE(lib.contains("k"));
  lib.register_codelet("k",
                       core::Codelet::make("k1", {{hw::DeviceType::Cpu, 0.5}}));
  lib.register_codelet("k",
                       core::Codelet::make("k2", {{hw::DeviceType::Cpu, 0.6}}));
  EXPECT_EQ(lib.get("k")->name(), "k2");
}

class GeneratorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSizeSweep, MontageValidAtAllSizes) {
  const Workflow w = make_montage(GetParam());
  EXPECT_NO_THROW(w.validate());
  EXPECT_FALSE(w.task_graph().has_cycle());
}

TEST_P(GeneratorSizeSweep, WavefrontValidAtAllSizes) {
  const Workflow w = make_wavefront(GetParam());
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.task_count(), GetParam() * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizeSweep,
                         ::testing::Values(2u, 5u, 16u, 40u));

}  // namespace
}  // namespace hetflow::workflow
