#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hetflow::util {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_option("name", "default", "a string option");
  cli.add_option("count", "3", "a numeric option");
  cli.add_flag("verbose", "a flag");
  return cli;
}

void parse(Cli& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  parse(cli, {});
  EXPECT_EQ(cli.value("name"), "default");
  EXPECT_DOUBLE_EQ(cli.number("count"), 3.0);
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_FALSE(cli.provided("name"));
}

TEST(Cli, SpaceSeparatedValues) {
  Cli cli = make_cli();
  parse(cli, {"--name", "hello", "--count", "7"});
  EXPECT_EQ(cli.value("name"), "hello");
  EXPECT_DOUBLE_EQ(cli.number("count"), 7.0);
  EXPECT_TRUE(cli.provided("name"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  parse(cli, {"--name=world", "--count=2K"});
  EXPECT_EQ(cli.value("name"), "world");
  EXPECT_DOUBLE_EQ(cli.number("count"), 2000.0);
}

TEST(Cli, Flags) {
  Cli cli = make_cli();
  parse(cli, {"--verbose"});
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, HelpRequested) {
  Cli cli = make_cli();
  parse(cli, {"--help"});
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("--name"), std::string::npos);
  EXPECT_NE(cli.usage().find("a flag"), std::string::npos);
}

TEST(Cli, Errors) {
  {
    Cli cli = make_cli();
    EXPECT_THROW(parse(cli, {"--unknown", "x"}), ParseError);
  }
  {
    Cli cli = make_cli();
    EXPECT_THROW(parse(cli, {"--name"}), ParseError);  // missing value
  }
  {
    Cli cli = make_cli();
    EXPECT_THROW(parse(cli, {"--verbose=true"}), ParseError);
  }
  {
    Cli cli = make_cli();
    EXPECT_THROW(parse(cli, {"positional"}), ParseError);
  }
  {
    Cli cli = make_cli();
    parse(cli, {});
    EXPECT_THROW(cli.value("nope"), ParseError);
    EXPECT_THROW(cli.flag("name"), InternalError);  // option, not a flag
  }
}

TEST(Cli, DuplicateDeclarationRejected) {
  Cli cli("p", "d");
  cli.add_option("x", "1", "h");
  EXPECT_THROW(cli.add_option("x", "2", "h"), InternalError);
  EXPECT_THROW(cli.add_flag("x", "h"), InternalError);
}

TEST(Cli, LastValueWins) {
  Cli cli = make_cli();
  parse(cli, {"--name", "a", "--name", "b"});
  EXPECT_EQ(cli.value("name"), "b");
}

}  // namespace
}  // namespace hetflow::util
