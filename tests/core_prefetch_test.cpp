// Prefetching: transfers of queued tasks overlap the running task.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::exec_windows;

/// Bag of GPU-only tasks, each reading its own large host-resident input:
/// without prefetch every transfer serializes with the previous task's
/// execution; with prefetch they overlap.
double gpu_bag_makespan(bool prefetch, std::size_t tasks,
                        std::uint64_t bytes, double flops) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options;
  options.enable_prefetch = prefetch;
  Runtime rt(p, sched::make_scheduler("mct"), options);
  const auto gpu_only =
      Codelet::make("gpu-kernel", {{hw::DeviceType::Gpu, 0.8}});
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto input =
        rt.register_data(util::format("in%zu", i), bytes);
    rt.submit(util::format("t%zu", i), gpu_only, flops,
              {{input, data::AccessMode::Read}});
  }
  rt.wait_all();
  return rt.stats().makespan_s;
}

TEST(Prefetch, OverlapsTransfersWithExecution) {
  // 8 tasks x (0.1 s exec + 0.064 s transfer over 16 GB/s PCIe).
  const std::uint64_t bytes = 1ull << 30;  // 1 GiB
  const double flops = 32e9;               // 0.1 s on the 400-GFLOPS GPU
  const double without = gpu_bag_makespan(false, 8, bytes, flops);
  const double with = gpu_bag_makespan(true, 8, bytes, flops);
  // Serial: ~8 x (0.0625 + 0.1) = 1.3 s. Overlapped: ~0.0625 + 8 x 0.1.
  EXPECT_LT(with, without * 0.75);
  EXPECT_NEAR(without, 8 * (0.0625 + 0.1), 0.05);
  EXPECT_NEAR(with, 0.0625 + 8 * 0.1, 0.05);
}

TEST(Prefetch, CountsReportedInStats) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options;
  options.enable_prefetch = true;
  Runtime rt(p, sched::make_scheduler("mct"), options);
  const auto gpu_only =
      Codelet::make("gpu-kernel", {{hw::DeviceType::Gpu, 0.8}});
  for (int i = 0; i < 4; ++i) {
    const auto input =
        rt.register_data(util::format("in%d", i), 64ull << 20);
    rt.submit(util::format("t%d", i), gpu_only, 8e9,
              {{input, data::AccessMode::Read}});
  }
  rt.wait_all();
  EXPECT_GT(rt.stats().data.prefetches, 0u);
  // Prefetch replaces, not duplicates, the demand fetch.
  EXPECT_EQ(rt.stats().data.fetches, 4u);
  EXPECT_EQ(rt.stats().transfers.transfer_count, 4u);
}

TEST(Prefetch, NeverChangesResults) {
  // Same workload, prefetch on/off: identical task placement, identical
  // bytes moved — only timing improves.
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_montage(24);
  RuntimeOptions base;
  RuntimeOptions pf;
  pf.enable_prefetch = true;
  const auto off = workflow::run_workflow(p, "dmda", wf, lib, base);
  const auto on = workflow::run_workflow(p, "dmda", wf, lib, pf);
  EXPECT_EQ(on.tasks_completed, off.tasks_completed);
  EXPECT_LE(on.makespan_s, off.makespan_s * 1.05);
}

TEST(Prefetch, InvariantsHoldAcrossPolicies) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 1);
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_cybershake(2, 8);
  for (const std::string& policy : sched::scheduler_names()) {
    RuntimeOptions options;
    options.enable_prefetch = true;
    Runtime rt(p, sched::make_scheduler(policy), options);
    const auto ids = workflow::submit_workflow(rt, wf, lib);
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_completed, wf.task_count()) << policy;
    hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
    const auto windows = exec_windows(rt.tracer());
    for (TaskId id : ids) {
      for (TaskId dep : rt.task(id).dependencies) {
        EXPECT_GE(windows.at(id).first, windows.at(dep).second - 1e-9)
            << policy;
      }
    }
  }
}

TEST(Prefetch, WorksWithFailuresAndNoise) {
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  const auto lib = workflow::CodeletLibrary::standard();
  RuntimeOptions options;
  options.enable_prefetch = true;
  options.noise_cv = 0.3;
  options.failure_model = hw::FailureModel::uniform(0.3);
  options.failure_policy = FailurePolicy::Reschedule;
  const workflow::Workflow wf = workflow::make_ligo(12, 4);
  const auto stats = workflow::run_workflow(p, "dmda", wf, lib, options);
  EXPECT_EQ(stats.tasks_completed, wf.task_count());
}

TEST(Prefetch, SharedInputFetchedOnce) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options;
  options.enable_prefetch = true;
  Runtime rt(p, sched::make_scheduler("mct"), options);
  const auto gpu_only =
      Codelet::make("gpu-kernel", {{hw::DeviceType::Gpu, 0.8}});
  const auto shared = rt.register_data("shared", 256ull << 20);
  for (int i = 0; i < 6; ++i) {
    rt.submit(util::format("t%d", i), gpu_only, 4e9,
              {{shared, data::AccessMode::Read}});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().transfers.transfer_count, 1u);
}

}  // namespace
}  // namespace hetflow::core
