#include "hw/device.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hetflow::hw {
namespace {

TEST(DeviceType, StringRoundTrip) {
  EXPECT_STREQ(to_string(DeviceType::Cpu), "cpu");
  EXPECT_STREQ(to_string(DeviceType::Gpu), "gpu");
  EXPECT_STREQ(to_string(DeviceType::Fpga), "fpga");
  EXPECT_STREQ(to_string(DeviceType::Dsp), "dsp");
  EXPECT_EQ(device_type_from_string("GPU"), DeviceType::Gpu);
  EXPECT_EQ(device_type_from_string("cpu"), DeviceType::Cpu);
  EXPECT_EQ(device_type_from_string("Fpga"), DeviceType::Fpga);
  EXPECT_THROW(device_type_from_string("tpu"), ParseError);
}

TEST(Device, ConstructionValidates) {
  EXPECT_NO_THROW(Device(0, "c0", DeviceType::Cpu, 10.0, 0));
  EXPECT_THROW(Device(0, "bad", DeviceType::Cpu, 0.0, 0), InternalError);
  EXPECT_THROW(Device(0, "bad", DeviceType::Cpu, -1.0, 0), InternalError);
  EXPECT_THROW(Device(0, "bad", DeviceType::Cpu, 1.0, 0, -1e-6),
               InternalError);
}

TEST(Device, DefaultDvfsState) {
  const Device d(0, "c0", DeviceType::Cpu, 10.0, 0);
  ASSERT_EQ(d.dvfs_states().size(), 1u);
  EXPECT_EQ(d.nominal_dvfs_index(), 0u);
  EXPECT_DOUBLE_EQ(d.time_scale(0), 1.0);
}

TEST(Device, DvfsTimeScaleInverseToFrequency) {
  Device d(0, "g0", DeviceType::Gpu, 100.0, 1);
  d.set_dvfs_states({{1.0, 100.0, 10.0}, {2.0, 220.0, 12.0}}, 1);
  EXPECT_DOUBLE_EQ(d.time_scale(1), 1.0);   // nominal
  EXPECT_DOUBLE_EQ(d.time_scale(0), 2.0);   // half clock -> twice the time
  EXPECT_DOUBLE_EQ(d.nominal_dvfs().frequency_ghz, 2.0);
}

TEST(Device, DvfsValidation) {
  Device d(0, "c0", DeviceType::Cpu, 10.0, 0);
  EXPECT_THROW(d.set_dvfs_states({}, 0), InternalError);
  EXPECT_THROW(d.set_dvfs_states({{1.0, 5.0, 1.0}}, 1), InternalError);
  // Unsorted frequencies rejected.
  EXPECT_THROW(
      d.set_dvfs_states({{2.0, 10.0, 1.0}, {1.0, 5.0, 1.0}}, 0),
      InternalError);
  // Busy power below idle power rejected.
  EXPECT_THROW(d.set_dvfs_states({{1.0, 1.0, 5.0}}, 0), InternalError);
  // Non-positive frequency rejected.
  EXPECT_THROW(d.set_dvfs_states({{0.0, 5.0, 1.0}}, 0), InternalError);
}

TEST(Device, DvfsIndexOutOfRangeThrows) {
  const Device d(0, "c0", DeviceType::Cpu, 10.0, 0);
  EXPECT_THROW(d.dvfs_state(5), InternalError);
}

TEST(Device, AccessorsReflectConstruction) {
  const Device d(3, "fpga0", DeviceType::Fpga, 150.0, 2, 50e-6);
  EXPECT_EQ(d.id(), 3u);
  EXPECT_EQ(d.name(), "fpga0");
  EXPECT_EQ(d.type(), DeviceType::Fpga);
  EXPECT_DOUBLE_EQ(d.peak_gflops(), 150.0);
  EXPECT_EQ(d.memory_node(), 2u);
  EXPECT_DOUBLE_EQ(d.launch_overhead_s(), 50e-6);
}

}  // namespace
}  // namespace hetflow::hw
