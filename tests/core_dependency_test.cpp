// Implicit dependency inference: sequential consistency per data handle.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/mct.hpp"
#include "util/strings.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;
using hetflow::testing::exec_windows;

struct DependencyTest : ::testing::Test {
  DependencyTest()
      : platform(hw::make_cpu_only(4)),
        rt(platform, std::make_unique<sched::MctScheduler>()) {}

  hw::Platform platform;
  Runtime rt;
  CodeletPtr codelet = cpu_only_codelet();
};

TEST_F(DependencyTest, RawReaderAfterWriter) {
  const auto d = rt.register_data("d", 1024);
  const TaskId w = rt.submit("w", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId r = rt.submit("r", codelet, 1e9, {{d, data::AccessMode::Read}});
  EXPECT_EQ(rt.task(r).dependencies, (std::vector<TaskId>{w}));
  EXPECT_EQ(rt.dependents(w), (std::vector<TaskId>{r}));
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  EXPECT_GE(windows.at(r).first, windows.at(w).second - 1e-12);
}

TEST_F(DependencyTest, ConcurrentReadersShareNoDependency) {
  const auto d = rt.register_data("d", 1024);
  rt.submit("w", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId r1 =
      rt.submit("r1", codelet, 1e9, {{d, data::AccessMode::Read}});
  const TaskId r2 =
      rt.submit("r2", codelet, 1e9, {{d, data::AccessMode::Read}});
  EXPECT_EQ(rt.task(r1).dependencies.size(), 1u);
  EXPECT_EQ(rt.task(r2).dependencies.size(), 1u);
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  // Readers overlap in time (2 cores available).
  EXPECT_LT(windows.at(r1).first, windows.at(r2).second);
  EXPECT_LT(windows.at(r2).first, windows.at(r1).second);
}

TEST_F(DependencyTest, WarWriterWaitsForReaders) {
  const auto d = rt.register_data("d", 1024);
  const TaskId w1 =
      rt.submit("w1", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId r =
      rt.submit("r", codelet, 4e9, {{d, data::AccessMode::Read}});
  const TaskId w2 =
      rt.submit("w2", codelet, 1e9, {{d, data::AccessMode::Write}});
  // w2 depends on both the previous writer (WAW) and the reader (WAR).
  const auto& deps = rt.task(w2).dependencies;
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_TRUE(std::count(deps.begin(), deps.end(), w1) == 1);
  EXPECT_TRUE(std::count(deps.begin(), deps.end(), r) == 1);
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  EXPECT_GE(windows.at(w2).first, windows.at(r).second - 1e-12);
}

TEST_F(DependencyTest, WawChain) {
  const auto d = rt.register_data("d", 1024);
  const TaskId w1 =
      rt.submit("w1", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId w2 =
      rt.submit("w2", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId w3 =
      rt.submit("w3", codelet, 1e9, {{d, data::AccessMode::Write}});
  EXPECT_EQ(rt.task(w2).dependencies, (std::vector<TaskId>{w1}));
  EXPECT_EQ(rt.task(w3).dependencies, (std::vector<TaskId>{w2}));
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  EXPECT_GE(windows.at(w2).first, windows.at(w1).second - 1e-12);
  EXPECT_GE(windows.at(w3).first, windows.at(w2).second - 1e-12);
}

TEST_F(DependencyTest, ReadWriteActsAsBoth) {
  const auto d = rt.register_data("d", 1024);
  const TaskId w =
      rt.submit("w", codelet, 1e9, {{d, data::AccessMode::Write}});
  const TaskId rw =
      rt.submit("rw", codelet, 1e9, {{d, data::AccessMode::ReadWrite}});
  const TaskId r =
      rt.submit("r", codelet, 1e9, {{d, data::AccessMode::Read}});
  EXPECT_EQ(rt.task(rw).dependencies, (std::vector<TaskId>{w}));
  EXPECT_EQ(rt.task(r).dependencies, (std::vector<TaskId>{rw}));
  rt.wait_all();
  EXPECT_EQ(rt.task(r).state(), TaskState::Completed);
}

TEST_F(DependencyTest, DistinctHandlesAreIndependent) {
  const auto a = rt.register_data("a", 1024);
  const auto b = rt.register_data("b", 1024);
  rt.submit("wa", codelet, 1e9, {{a, data::AccessMode::Write}});
  const TaskId wb =
      rt.submit("wb", codelet, 1e9, {{b, data::AccessMode::Write}});
  EXPECT_TRUE(rt.task(wb).dependencies.empty());
}

TEST_F(DependencyTest, DuplicateDependencyCountedOnce) {
  const auto a = rt.register_data("a", 1024);
  const auto b = rt.register_data("b", 1024);
  const TaskId w = rt.submit("w", codelet, 1e9,
                             {{a, data::AccessMode::Write},
                              {b, data::AccessMode::Write}});
  // Consumer reads both handles written by the same producer.
  const TaskId r = rt.submit("r", codelet, 1e9,
                             {{a, data::AccessMode::Read},
                              {b, data::AccessMode::Read}});
  EXPECT_EQ(rt.task(r).dependencies, (std::vector<TaskId>{w}));
  EXPECT_EQ(rt.unfinished_deps(r), 1u);
  rt.wait_all();
  EXPECT_EQ(rt.task(r).state(), TaskState::Completed);
}

TEST_F(DependencyTest, RwTaskDoesNotDependOnItself) {
  const auto d = rt.register_data("d", 1024);
  const TaskId rw =
      rt.submit("rw", codelet, 1e9, {{d, data::AccessMode::ReadWrite}});
  EXPECT_TRUE(rt.task(rw).dependencies.empty());
  rt.wait_all();
  EXPECT_EQ(rt.task(rw).state(), TaskState::Completed);
}

TEST_F(DependencyTest, CompletedParentDoesNotBlockLateSubmission) {
  const auto d = rt.register_data("d", 1024);
  const TaskId w =
      rt.submit("w", codelet, 1e9, {{d, data::AccessMode::Write}});
  rt.wait_all();
  const TaskId r =
      rt.submit("late", codelet, 1e9, {{d, data::AccessMode::Read}});
  // Dependency recorded for lineage, but not counted as unfinished.
  EXPECT_EQ(rt.task(r).dependencies, (std::vector<TaskId>{w}));
  EXPECT_EQ(rt.unfinished_deps(r), 0u);
  rt.wait_all();
  EXPECT_EQ(rt.task(r).state(), TaskState::Completed);
}

TEST_F(DependencyTest, DiamondExecutionOrder) {
  const auto top = rt.register_data("top", 1024);
  const auto left = rt.register_data("left", 1024);
  const auto right = rt.register_data("right", 1024);
  const TaskId a =
      rt.submit("a", codelet, 1e9, {{top, data::AccessMode::Write}});
  const TaskId b = rt.submit("b", codelet, 1e9,
                             {{top, data::AccessMode::Read},
                              {left, data::AccessMode::Write}});
  const TaskId c = rt.submit("c", codelet, 1e9,
                             {{top, data::AccessMode::Read},
                              {right, data::AccessMode::Write}});
  const TaskId d = rt.submit("d", codelet, 1e9,
                             {{left, data::AccessMode::Read},
                              {right, data::AccessMode::Read}});
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  EXPECT_GE(windows.at(b).first, windows.at(a).second - 1e-12);
  EXPECT_GE(windows.at(c).first, windows.at(a).second - 1e-12);
  EXPECT_GE(windows.at(d).first, windows.at(b).second - 1e-12);
  EXPECT_GE(windows.at(d).first, windows.at(c).second - 1e-12);
  // b and c run concurrently on separate cores.
  EXPECT_LT(windows.at(b).first, windows.at(c).second);
}

TEST_F(DependencyTest, LongChainCompletes) {
  const auto d = rt.register_data("d", 64);
  for (int i = 0; i < 500; ++i) {
    rt.submit(util::format("c%d", i), codelet, 1e7,
              {{d, data::AccessMode::ReadWrite}});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 500u);
}

}  // namespace
}  // namespace hetflow::core
