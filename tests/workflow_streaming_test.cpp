#include "workflow/streaming.hpp"

#include <gtest/gtest.h>

#include "hw/failure.hpp"
#include "hw/presets.hpp"

namespace hetflow::workflow {
namespace {

PeriodicPipeline sensing_pipeline(double period, double flops_scale = 1.0) {
  PeriodicPipeline pipeline;
  pipeline.name = "sense";
  pipeline.period_s = period;
  pipeline.stages = {
      StageSpec{"io", 1e8 * flops_scale, 1 << 20},
      StageSpec{"compute", 6e8 * flops_scale, 1 << 20},
      StageSpec{"reduce", 1e8 * flops_scale, 64 << 10},
  };
  return pipeline;
}

TEST(Streaming, ValidatesInput) {
  const hw::Platform p = hw::make_cpu_only(2);
  const auto lib = CodeletLibrary::standard();
  EXPECT_THROW(run_streaming(p, "mct", {sensing_pipeline(1.0)}, 0.0, lib),
               util::InternalError);
  PeriodicPipeline bad = sensing_pipeline(0.0);
  EXPECT_THROW(run_streaming(p, "mct", {bad}, 1.0, lib),
               util::InternalError);
  PeriodicPipeline empty;
  empty.name = "empty";
  empty.period_s = 1.0;
  EXPECT_THROW(run_streaming(p, "mct", {empty}, 1.0, lib),
               util::InternalError);
}

TEST(Streaming, InstanceCountMatchesHorizon) {
  const hw::Platform p = hw::make_cpu_only(4);
  const auto lib = CodeletLibrary::standard();
  const StreamingResult result =
      run_streaming(p, "mct", {sensing_pipeline(0.5)}, 5.0, lib);
  // Releases at 0, 0.5, ..., 4.5 -> 10 instances.
  EXPECT_EQ(result.total_instances(), 10u);
  EXPECT_EQ(result.pipelines.size(), 1u);
  EXPECT_EQ(result.pipelines[0].instances, 10u);
  EXPECT_DOUBLE_EQ(result.horizon_s, 5.0);
}

TEST(Streaming, UnderloadedSystemMissesNothing) {
  const hw::Platform p = hw::make_cpu_only(4);
  const auto lib = CodeletLibrary::standard();
  // Each instance needs ~0.13 s of compute; period 1 s on 4 cores.
  const StreamingResult result =
      run_streaming(p, "mct", {sensing_pipeline(1.0)}, 10.0, lib);
  EXPECT_EQ(result.total_misses(), 0u);
  EXPECT_DOUBLE_EQ(result.overall_miss_rate(), 0.0);
  EXPECT_GT(result.pipelines[0].mean_latency_s, 0.0);
  EXPECT_LE(result.pipelines[0].mean_latency_s,
            result.pipelines[0].max_latency_s);
}

TEST(Streaming, OverloadedSystemMissesDeadlines) {
  const hw::Platform p = hw::make_cpu_only(1);
  const auto lib = CodeletLibrary::standard();
  // ~0.13 s work per instance at period 0.05 s on one core: hopeless.
  const StreamingResult result =
      run_streaming(p, "mct", {sensing_pipeline(0.05)}, 2.0, lib);
  EXPECT_GT(result.overall_miss_rate(), 0.5);
  EXPECT_GT(result.makespan_s, result.horizon_s);
}

TEST(Streaming, ExplicitDeadlineTighterThanPeriod) {
  const hw::Platform p = hw::make_cpu_only(2);
  const auto lib = CodeletLibrary::standard();
  PeriodicPipeline pipeline = sensing_pipeline(1.0);
  pipeline.relative_deadline_s = 1e-6;  // unmeetable
  const StreamingResult result =
      run_streaming(p, "mct", {pipeline}, 3.0, lib);
  EXPECT_EQ(result.pipelines[0].deadline_misses,
            result.pipelines[0].instances);
}

TEST(Streaming, MultiplePipelinesTracked) {
  const hw::Platform p = hw::make_workstation();
  const auto lib = CodeletLibrary::standard();
  PeriodicPipeline fast = sensing_pipeline(0.25);
  fast.name = "fast";
  PeriodicPipeline slow = sensing_pipeline(1.0, 4.0);
  slow.name = "slow";
  const StreamingResult result =
      run_streaming(p, "dmda", {fast, slow}, 4.0, lib);
  ASSERT_EQ(result.pipelines.size(), 2u);
  EXPECT_EQ(result.pipelines[0].name, "fast");
  EXPECT_EQ(result.pipelines[0].instances, 16u);
  EXPECT_EQ(result.pipelines[1].instances, 4u);
}

TEST(Streaming, LatencyIncludesQueueingUnderLoad) {
  const hw::Platform p = hw::make_cpu_only(1);
  const auto lib = CodeletLibrary::standard();
  const StreamingResult relaxed =
      run_streaming(p, "mct", {sensing_pipeline(2.0)}, 8.0, lib);
  const StreamingResult tight =
      run_streaming(p, "mct", {sensing_pipeline(0.1)}, 8.0, lib);
  EXPECT_GT(tight.pipelines[0].mean_latency_s,
            relaxed.pipelines[0].mean_latency_s);
}

TEST(Streaming, DeterministicAcrossRuns) {
  const hw::Platform p = hw::make_workstation();
  const auto lib = CodeletLibrary::standard();
  core::RuntimeOptions options;
  options.noise_cv = 0.2;
  const StreamingResult a =
      run_streaming(p, "dmda", {sensing_pipeline(0.3)}, 3.0, lib, options);
  const StreamingResult b =
      run_streaming(p, "dmda", {sensing_pipeline(0.3)}, 3.0, lib, options);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_misses(), b.total_misses());
  EXPECT_DOUBLE_EQ(a.pipelines[0].mean_latency_s,
                   b.pipelines[0].mean_latency_s);
}

// Regression: static (full-graph) schedulers cannot absorb the tasks
// FailurePolicy::Reschedule hands back at run time. This used to die
// deep inside the policy (or stall the wait_all loop) with a bare
// assertion; the runtime now rejects the hand-back with a clear error
// the moment the first failed attempt would re-enter the scheduler.
TEST(Streaming, StaticSchedulerRejectsRescheduleAtHandBack) {
  const hw::Platform p = hw::make_workstation();
  const auto lib = CodeletLibrary::standard();
  core::RuntimeOptions options;
  // High enough that a failure is certain within the horizon.
  options.failure_model = hw::FailureModel::uniform(50.0);
  options.failure_policy = core::FailurePolicy::Reschedule;
  options.max_attempts = 1000;
  for (const char* policy : {"heft", "cpop", "peft"}) {
    try {
      run_streaming(p, policy, {sensing_pipeline(0.5)}, 2.0, lib, options);
      FAIL() << policy << ": expected InvalidArgument";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(
                    "cannot accept dynamically submitted tasks"),
                std::string::npos)
          << policy << ": " << e.what();
    }
  }
}

// The same failure model is fine when recovery stays on-device (no task
// re-enters the scheduler unplanned), and fine for dynamic policies
// under Reschedule.
TEST(Streaming, FailureRecoveryStillWorksWhereSupported) {
  const hw::Platform p = hw::make_workstation();
  const auto lib = CodeletLibrary::standard();
  core::RuntimeOptions retry;
  retry.failure_model = hw::FailureModel::uniform(0.2);
  retry.failure_policy = core::FailurePolicy::RetrySameDevice;
  retry.max_attempts = 100;
  const StreamingResult on_static =
      run_streaming(p, "heft", {sensing_pipeline(0.5)}, 2.0, lib, retry);
  EXPECT_EQ(on_static.total_instances(), 4u);

  core::RuntimeOptions resched = retry;
  resched.failure_policy = core::FailurePolicy::Reschedule;
  const StreamingResult on_dynamic =
      run_streaming(p, "dmda", {sensing_pipeline(0.5)}, 2.0, lib, resched);
  EXPECT_EQ(on_dynamic.total_instances(), 4u);
}

class StreamingPolicySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamingPolicySweep, AllPoliciesCompleteAllInstances) {
  const hw::Platform p = hw::make_workstation();
  const auto lib = CodeletLibrary::standard();
  const StreamingResult result =
      run_streaming(p, GetParam(), {sensing_pipeline(0.5)}, 3.0, lib);
  EXPECT_EQ(result.total_instances(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Policies, StreamingPolicySweep,
                         ::testing::Values("eager", "mct", "dmda",
                                           "work-stealing", "heft", "cpop"));

}  // namespace
}  // namespace hetflow::workflow
