#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;

TEST(Analysis, RequiresTrace) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.record_trace = false;
  Runtime rt(p, sched::make_scheduler("mct"), options);
  rt.submit("t", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_THROW(analyze_schedule(rt), util::InternalError);
}

TEST(Analysis, EmptyRun) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, sched::make_scheduler("mct"));
  rt.wait_all();
  const ScheduleAnalysis analysis = analyze_schedule(rt);
  EXPECT_EQ(analysis.makespan, 0.0);
  EXPECT_TRUE(analysis.critical_path.empty());
  EXPECT_TRUE(analysis.tasks.empty());
}

TEST(Analysis, PureChainIsEntirelyCritical) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  const auto d = rt.register_data("d", 64);
  std::vector<TaskId> chain;
  for (int i = 0; i < 5; ++i) {
    chain.push_back(rt.submit(util::format("c%d", i), cpu_only_codelet(),
                              1e9, {{d, data::AccessMode::ReadWrite}}));
  }
  rt.wait_all();
  const ScheduleAnalysis analysis = analyze_schedule(rt);
  EXPECT_EQ(analysis.critical_path, chain);
  EXPECT_NEAR(analysis.critical_compute_fraction(), 1.0, 0.01);
  // Chain tasks have (almost) no slack — only the 1 us launch-overhead
  // gap between a completion and the dependent's start.
  for (const TaskTiming& t : analysis.tasks) {
    EXPECT_NEAR(t.slack, 0.0, 1e-5);
  }
}

TEST(Analysis, OffPathTaskHasSlack) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  const auto d = rt.register_data("d", 64);
  // Long chain (2 x 2s) on one core + one short independent task.
  for (int i = 0; i < 2; ++i) {
    rt.submit(util::format("c%d", i), cpu_only_codelet(), 12e9,
              {{d, data::AccessMode::ReadWrite}});
  }
  const TaskId shorty = rt.submit("shorty", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  const ScheduleAnalysis analysis = analyze_schedule(rt);
  const auto it = std::find_if(
      analysis.tasks.begin(), analysis.tasks.end(),
      [&](const TaskTiming& t) { return t.task == shorty; });
  ASSERT_NE(it, analysis.tasks.end());
  EXPECT_GT(it->slack, 1.0);  // finished ~3.8 s before the makespan
  EXPECT_EQ(std::count(analysis.critical_path.begin(),
                       analysis.critical_path.end(), shorty),
            0);
}

TEST(Analysis, MakespanMatchesStats) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  Runtime rt(p, sched::make_scheduler("dmda"));
  workflow::submit_workflow(rt, workflow::make_montage(16),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  const ScheduleAnalysis analysis = analyze_schedule(rt);
  EXPECT_NEAR(analysis.makespan, rt.stats().makespan_s, 1e-9);
  EXPECT_EQ(analysis.tasks.size(), rt.stats().tasks_completed);
  EXPECT_FALSE(analysis.critical_path.empty());
  // The realized path ends at the last-finishing task.
  EXPECT_GT(analysis.critical_exec_seconds, 0.0);
  EXPECT_LE(analysis.critical_exec_seconds, analysis.makespan + 1e-9);
}

TEST(Analysis, CriticalPathHopsAreDependencyOrdered) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, sched::make_scheduler("heft"));
  workflow::submit_workflow(rt, workflow::make_ligo(8, 3),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  const ScheduleAnalysis analysis = analyze_schedule(rt);
  std::map<TaskId, std::pair<double, double>> windows;
  for (const TaskTiming& t : analysis.tasks) {
    windows[t.task] = {t.start, t.end};
  }
  for (std::size_t i = 1; i < analysis.critical_path.size(); ++i) {
    EXPECT_GE(windows.at(analysis.critical_path[i]).first,
              windows.at(analysis.critical_path[i - 1]).second - 1e-9);
  }
}

TEST(Analysis, ReportMentionsPath) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  const auto d = rt.register_data("d", 64);
  rt.submit("alpha", cpu_only_codelet(), 1e9,
            {{d, data::AccessMode::Write}});
  rt.submit("omega", cpu_only_codelet(), 1e9, {{d, data::AccessMode::Read}});
  rt.wait_all();
  const std::string report =
      critical_path_report(analyze_schedule(rt));
  EXPECT_NE(report.find("makespan"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("omega"), std::string::npos);
}

TEST(SleepModel, ReducesIdleEnergyOnlyBeyondThreshold) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  // cpu0 works ~2 s; cpu1 idles the whole time.
  const auto d = rt.register_data("d", 64);
  rt.submit("a", cpu_only_codelet(), 6e9, {{d, data::AccessMode::ReadWrite}});
  rt.submit("b", cpu_only_codelet(), 6e9, {{d, data::AccessMode::ReadWrite}});
  rt.wait_all();
  const RunStats& base = rt.stats();

  SleepPolicy policy;
  policy.threshold_s = 0.5;
  policy.sleep_watts = 0.0;
  const RunStats slept = apply_sleep_model(rt, policy);
  // The all-idle device sleeps after 0.5 s: pays 0.5 s of idle power.
  const double idle_watts = p.device(1).nominal_dvfs().idle_watts;
  EXPECT_NEAR(slept.devices[1].idle_energy_j, 0.5 * idle_watts, 1e-6);
  EXPECT_LT(slept.idle_energy_j(), base.idle_energy_j());
  // Busy energy untouched.
  EXPECT_DOUBLE_EQ(slept.busy_energy_j(), base.busy_energy_j());
}

TEST(SleepModel, HugeThresholdIsNoop) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  rt.submit("a", cpu_only_codelet(), 2e9, {});
  rt.wait_all();
  SleepPolicy policy;
  policy.threshold_s = 1e9;
  const RunStats slept = apply_sleep_model(rt, policy);
  EXPECT_NEAR(slept.idle_energy_j(), rt.stats().idle_energy_j(), 1e-6);
}

TEST(SleepModel, ZeroThresholdSleepsAllIdle) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, sched::make_scheduler("mct"));
  rt.submit("a", cpu_only_codelet(), 2e9, {});
  rt.wait_all();
  SleepPolicy policy;
  policy.threshold_s = 0.0;
  policy.sleep_watts = 0.0;
  const RunStats slept = apply_sleep_model(rt, policy);
  EXPECT_NEAR(slept.idle_energy_j(), 0.0, 1e-9);
}

TEST(SleepModel, RequiresTraceAndValidParams) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.record_trace = false;
  Runtime rt(p, sched::make_scheduler("mct"), options);
  rt.wait_all();
  EXPECT_THROW(apply_sleep_model(rt, SleepPolicy{}), util::InternalError);
  Runtime traced(p, sched::make_scheduler("mct"));
  traced.wait_all();
  SleepPolicy bad;
  bad.threshold_s = -1.0;
  EXPECT_THROW(apply_sleep_model(traced, bad), util::InternalError);
}

TEST(Dmdas, PrioritizesCriticalChainAndPlacesDataAware) {
  // dmdas should match or beat dmda when a long chain competes with
  // filler for the single fast device.
  const hw::Platform p = hw::make_workstation();
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_ligo(24, 6);
  const double dmdas =
      workflow::run_workflow(p, "dmdas", wf, lib).makespan_s;
  const double random =
      workflow::run_workflow(p, "random", wf, lib).makespan_s;
  EXPECT_LT(dmdas, random);
}

}  // namespace
}  // namespace hetflow::core
