#include "workflow/linalg.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::workflow {
namespace {

TEST(Cholesky, TaskCountFormula) {
  EXPECT_EQ(cholesky_task_count(1), 1u);
  EXPECT_EQ(cholesky_task_count(2), 4u);   // 2 potrf + 1 trsm + 1 syrk
  EXPECT_EQ(cholesky_task_count(3), 10u);
  EXPECT_EQ(cholesky_task_count(4), 20u);
  EXPECT_EQ(cholesky_task_count(8), 120u);
}

TEST(Cholesky, WorkflowShape) {
  const Workflow w = make_cholesky(4, 512);
  w.validate();
  EXPECT_EQ(w.task_count(), cholesky_task_count(4));
  EXPECT_FALSE(w.task_graph().has_cycle());
  // Critical path alternates potrf/trsm/syrk down the diagonal:
  // depth = 3 * (nt - 1) + 1.
  EXPECT_EQ(w.depth(), 10u);
}

TEST(Cholesky, TaskKindsAndCosts) {
  const Workflow w = make_cholesky(3, 1024);
  std::size_t potrf = 0;
  std::size_t trsm = 0;
  std::size_t syrk = 0;
  std::size_t gemm = 0;
  double potrf_flops = 0.0;
  double gemm_flops = 0.0;
  for (const WorkflowTask& task : w.tasks()) {
    if (task.kind == "potrf") {
      ++potrf;
      potrf_flops = task.flops;
    } else if (task.kind == "trsm") {
      ++trsm;
    } else if (task.kind == "syrk") {
      ++syrk;
    } else if (task.kind == "gemm") {
      ++gemm;
      gemm_flops = task.flops;
    }
  }
  EXPECT_EQ(potrf, 3u);
  EXPECT_EQ(trsm, 3u);
  EXPECT_EQ(syrk, 3u);
  EXPECT_EQ(gemm, 1u);
  // gemm = 2n^3 vs potrf = n^3/3 -> ratio 6.
  EXPECT_NEAR(gemm_flops / potrf_flops, 6.0, 1e-9);
}

TEST(Lu, WorkflowShape) {
  const Workflow w = make_lu(4, 512);
  w.validate();
  // nt getrf + 2 * sum(k=1..nt-1) k trsm + sum k^2 gemm
  // = 4 + 2*6 + 14 = 30.
  EXPECT_EQ(w.task_count(), 30u);
  EXPECT_FALSE(w.task_graph().has_cycle());
}

TEST(CholeskyInplace, SubmitsExpectedTaskCount) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, sched::make_scheduler("dmda"));
  const std::size_t n = submit_cholesky_inplace(
      rt, 6, 1024, CodeletLibrary::standard());
  EXPECT_EQ(n, cholesky_task_count(6));
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, n);
}

TEST(CholeskyInplace, MatchesWorkflowFormMakespanClosely) {
  // The SSA workflow form and the in-place form encode the same DAG; with
  // the same scheduler their makespans should be in the same ballpark
  // (files vs tiles differ slightly in transfer granularity).
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const auto lib = CodeletLibrary::standard();

  core::Runtime inplace(p, sched::make_scheduler("heft"));
  submit_cholesky_inplace(inplace, 8, 1024, lib);
  inplace.wait_all();

  const auto wf_stats =
      run_workflow(p, "heft", make_cholesky(8, 1024), lib);

  EXPECT_LT(inplace.stats().makespan_s, wf_stats.makespan_s * 2.0);
  EXPECT_GT(inplace.stats().makespan_s, wf_stats.makespan_s * 0.3);
}

TEST(CholeskyInplace, GpuGetsBulkOfGemms) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, sched::make_scheduler("dmda"));
  submit_cholesky_inplace(rt, 10, 2048, CodeletLibrary::standard());
  rt.wait_all();
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  std::size_t cpu_tasks = 0;
  for (hw::DeviceId id : p.devices_of_type(hw::DeviceType::Cpu)) {
    cpu_tasks += rt.stats().devices[id].tasks_completed;
  }
  // GPU is ~50x faster at gemm: it should dominate execution counts.
  EXPECT_GT(rt.stats().devices[gpus[0]].tasks_completed, cpu_tasks);
}

class CholeskySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeSweep, AllSizesExecuteCompletely) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, sched::make_scheduler("mct"));
  const std::size_t n =
      submit_cholesky_inplace(rt, GetParam(), 512,
                              CodeletLibrary::standard());
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, n);
  EXPECT_EQ(n, cholesky_task_count(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 12u));

}  // namespace
}  // namespace hetflow::workflow
