// hetflow-verify end-to-end: RuntimeOptions::validate wired through
// submit() and wait_all(), audit snapshots, and the JSON round trip.
#include "check/audit.hpp"

#include <gtest/gtest.h>

#include "check/audit_file.hpp"
#include "helpers.hpp"
#include "sched/mct.hpp"
#include "util/strings.hpp"

namespace hetflow::check {
namespace {

using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

core::RuntimeOptions validating_options() {
  core::RuntimeOptions options;
  options.validate = true;
  return options;
}

TEST(RuntimeValidate, CleanChainPassesValidation) {
  const hw::Platform p = hw::make_cpu_only(4);
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>(),
                   validating_options());
  const auto d = rt.register_data("acc", 1024);
  for (int i = 0; i < 4; ++i) {
    rt.submit(util::format("link%d", i), cpu_only_codelet(), 1e9,
              {{d, data::AccessMode::ReadWrite}});
  }
  EXPECT_NO_THROW(rt.wait_all());
  EXPECT_EQ(rt.stats().tasks_completed, 4u);
}

TEST(RuntimeValidate, GpuOffloadWithTransfersPassesValidation) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>(),
                   validating_options());
  const auto a = rt.register_data("a", 4 << 20);
  const auto b = rt.register_data("b", 4 << 20);
  rt.submit("produce", cpu_gpu_codelet(), 8e9, {{a, data::AccessMode::Write}});
  rt.submit("transform", cpu_gpu_codelet(), 8e9,
            {{a, data::AccessMode::Read}, {b, data::AccessMode::Write}});
  rt.submit("reduce", cpu_gpu_codelet(), 8e9, {{b, data::AccessMode::Read}});
  EXPECT_NO_THROW(rt.wait_all());
}

TEST(RuntimeValidate, DuplicateHandleInAccessListIsRejectedAtSubmit) {
  const hw::Platform p = hw::make_cpu_only(2);
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>(),
                   validating_options());
  const auto d = rt.register_data("d", 1024);
  EXPECT_THROW(rt.submit("dup", cpu_only_codelet(), 1e9,
                         {{d, data::AccessMode::Read},
                          {d, data::AccessMode::Write}}),
               ValidationError);
}

TEST(RuntimeValidate, DuplicateAccessIsAcceptedWithoutValidate) {
  // Without validate the legacy behavior stands (last access wins in the
  // dependency inference) — the checker must be strictly opt-in.
  const hw::Platform p = hw::make_cpu_only(2);
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 1024);
  EXPECT_NO_THROW(rt.submit("dup", cpu_only_codelet(), 1e9,
                            {{d, data::AccessMode::Read},
                             {d, data::AccessMode::Write}}));
  rt.wait_all();
}

TEST(RuntimeAudit, AuditOfCompletedRunPasses) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 1 << 20);
  rt.submit("w", cpu_gpu_codelet(), 4e9, {{d, data::AccessMode::Write}});
  rt.submit("r", cpu_gpu_codelet(), 4e9, {{d, data::AccessMode::Read}});
  rt.wait_all();
  const CheckReport report = audit_run(rt);
  EXPECT_TRUE(report.passed()) << report.summary();
}

TEST(RuntimeAudit, SnapshotCapturesTasksTopologyAndSpans) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 1 << 20);
  rt.submit("w", cpu_gpu_codelet(), 4e9, {{d, data::AccessMode::Write}});
  rt.submit("r", cpu_gpu_codelet(), 4e9, {{d, data::AccessMode::Read}});
  rt.wait_all();

  const RunRecord run = snapshot_run(rt);
  EXPECT_EQ(run.tasks.size(), 2u);
  EXPECT_EQ(run.device_count, p.device_count());
  EXPECT_EQ(run.node_count, p.memory_node_count());
  EXPECT_EQ(run.handle_count(), 1u);
  EXPECT_FALSE(run.spans.empty());
  // The RAW edge w -> r must appear in the snapshot.
  ASSERT_EQ(run.tasks[1].dependencies.size(), 1u);
  EXPECT_EQ(run.tasks[1].dependencies[0], run.tasks[0].id);
  EXPECT_TRUE(run.tasks[0].completed);
  EXPECT_LE(run.tasks[0].end, run.tasks[1].start + 1e-9);
}

TEST(RuntimeAudit, AuditJsonRoundTripsAndStaysClean) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto a = rt.register_data("a", 1 << 20);
  const auto b = rt.register_data("b", 2 << 20);
  rt.submit("w", cpu_gpu_codelet(), 4e9, {{a, data::AccessMode::Write}});
  rt.submit("t", cpu_gpu_codelet(), 4e9,
            {{a, data::AccessMode::Read}, {b, data::AccessMode::Write}});
  rt.wait_all();

  const AuditRecord original = snapshot_audit(rt);
  const AuditRecord parsed = parse_audit_json(to_audit_json(original));

  EXPECT_EQ(parsed.run.tasks.size(), original.run.tasks.size());
  EXPECT_EQ(parsed.run.device_count, original.run.device_count);
  EXPECT_EQ(parsed.run.handle_bytes, original.run.handle_bytes);
  EXPECT_EQ(parsed.run.spans.size(), original.run.spans.size());
  EXPECT_EQ(parsed.directory.states, original.directory.states);
  EXPECT_EQ(parsed.directory.claimed_resident_bytes,
            original.directory.claimed_resident_bytes);
  for (std::size_t i = 0; i < original.run.tasks.size(); ++i) {
    const TaskRecord& want = original.run.tasks[i];
    const TaskRecord& got = parsed.run.tasks[i];
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.dependencies, want.dependencies);
    EXPECT_EQ(got.device, want.device);
    EXPECT_DOUBLE_EQ(got.start, want.start);
    EXPECT_DOUBLE_EQ(got.end, want.end);
    ASSERT_EQ(got.accesses.size(), want.accesses.size());
    for (std::size_t j = 0; j < want.accesses.size(); ++j) {
      EXPECT_EQ(got.accesses[j].data, want.accesses[j].data);
      EXPECT_EQ(got.accesses[j].mode, want.accesses[j].mode);
    }
  }

  // A faithful round trip audits clean, same as the live run.
  EXPECT_TRUE(check_races(parsed.run).empty());
  EXPECT_TRUE(check_trace(parsed.run).empty());
  EXPECT_TRUE(check_directory(parsed.directory).empty());
}

TEST(RuntimeAudit, ParseRejectsMalformedDocuments) {
  EXPECT_ANY_THROW(parse_audit_json("not json"));
  EXPECT_ANY_THROW(parse_audit_json("{}"));
  EXPECT_ANY_THROW(
      parse_audit_json(R"({"format":"something-else","version":1})"));
}

TEST(RuntimeAudit, CorruptedSnapshotIsCaughtNotVacuouslyAccepted) {
  // Take a real run's snapshot, break it, and make sure the checkers
  // notice — guards against a detector that silently checks nothing.
  const hw::Platform p = hw::make_cpu_only(4);
  core::Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 1024);
  for (int i = 0; i < 3; ++i) {
    rt.submit(util::format("w%d", i), cpu_only_codelet(), 1e9,
              {{d, data::AccessMode::ReadWrite}});
  }
  rt.wait_all();

  RunRecord run = snapshot_run(rt);
  ASSERT_EQ(run.tasks.size(), 3u);
  // Drop every dependency edge and force the first two intervals to
  // overlap: a genuine unordered conflicting overlap.
  for (TaskRecord& task : run.tasks) {
    task.dependencies.clear();
  }
  run.tasks[1].start = run.tasks[0].start;
  run.tasks[1].end = run.tasks[0].end;
  const auto violations = check_races(run);
  bool found = false;
  for (const Violation& violation : violations) {
    found |= violation.kind == ViolationKind::ConflictingOverlap;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hetflow::check
