#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hetflow::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Sample variance of 1..100 = n(n+1)/12 = 841.666...
  EXPECT_NEAR(s.variance(), 841.6666667, 1e-6);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5050.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(9.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Sample, QuantilesOfKnownData) {
  Sample s;
  for (int i = 1; i <= 5; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.375), 2.5);  // interpolated
}

TEST(Sample, SingleElement) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Sample, ErrorsOnEmptyAndBadQ) {
  Sample s;
  EXPECT_THROW(s.quantile(0.5), InternalError);
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), InternalError);
  EXPECT_THROW(s.quantile(-0.1), InternalError);
}

TEST(Sample, MeanMinMax) {
  Sample s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Sample, AddAfterQuantileStillSorted) {
  Sample s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsFallInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InternalError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InternalError);
}

TEST(Histogram, AsciiContainsBars) {
  Histogram h(0.0, 4.0, 2);
  for (int i = 0; i < 8; ++i) {
    h.add(1.0);
  }
  h.add(3.0);
  const std::string art = h.to_ascii(8);
  EXPECT_NE(art.find("########"), std::string::npos);
  EXPECT_NE(art.find(" 8"), std::string::npos);
}

TEST(JainFairness, PerfectBalance) {
  EXPECT_DOUBLE_EQ(jain_fairness({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(JainFairness, AllOnOne) {
  EXPECT_NEAR(jain_fairness({8.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(CoefficientOfVariation, KnownValues) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5.0, 5.0, 5.0}), 0.0);
  // {2, 4}: mean 3, sample sd sqrt(2) -> cv = 0.4714...
  EXPECT_NEAR(coefficient_of_variation({2.0, 4.0}), std::sqrt(2.0) / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
}

class StatsRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsRandomSweep, WelfordMatchesTwoPass) {
  Rng rng(GetParam());
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9 * std::fabs(mean));
  EXPECT_NEAR(s.variance(), var, 1e-7 * var);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsRandomSweep,
                         ::testing::Values(3ull, 17ull, 2026ull));

}  // namespace
}  // namespace hetflow::util
