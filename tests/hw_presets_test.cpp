#include "hw/presets.hpp"

#include <gtest/gtest.h>

namespace hetflow::hw {
namespace {

TEST(Presets, CpuOnlyShape) {
  const Platform p = make_cpu_only(6);
  EXPECT_EQ(p.device_count(), 6u);
  EXPECT_EQ(p.memory_node_count(), 1u);
  EXPECT_TRUE(p.links().empty());
  for (const Device& d : p.devices()) {
    EXPECT_EQ(d.type(), DeviceType::Cpu);
    EXPECT_EQ(d.memory_node(), 0u);
  }
}

TEST(Presets, WorkstationShape) {
  const Platform p = make_workstation();
  EXPECT_EQ(p.devices_of_type(DeviceType::Cpu).size(), 4u);
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu).size(), 1u);
  EXPECT_EQ(p.memory_node_count(), 2u);
  EXPECT_TRUE(p.fully_connected());
  // GPU should be meaningfully faster than a core.
  const Device& gpu = p.device(p.devices_of_type(DeviceType::Gpu)[0]);
  const Device& cpu = p.device(p.devices_of_type(DeviceType::Cpu)[0]);
  EXPECT_GT(gpu.peak_gflops(), 10.0 * cpu.peak_gflops());
  // GPU has launch overhead, and multiple DVFS points exist everywhere.
  EXPECT_GT(gpu.launch_overhead_s(), 0.0);
  EXPECT_GE(cpu.dvfs_states().size(), 2u);
  EXPECT_GE(gpu.dvfs_states().size(), 2u);
}

TEST(Presets, HpcNodeConfigurable) {
  const Platform p = make_hpc_node(8, 3, 2);
  EXPECT_EQ(p.devices_of_type(DeviceType::Cpu).size(), 8u);
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu).size(), 3u);
  EXPECT_EQ(p.devices_of_type(DeviceType::Fpga).size(), 2u);
  // host + 3 GPU HBM + 2 FPGA DDR.
  EXPECT_EQ(p.memory_node_count(), 6u);
  EXPECT_TRUE(p.fully_connected());
}

TEST(Presets, HpcNodeGpuPeerLinksFasterThanPcie) {
  const Platform p = make_hpc_node(4, 2, 0);
  const Device& gpu0 = p.device(p.devices_of_type(DeviceType::Gpu)[0]);
  const Device& gpu1 = p.device(p.devices_of_type(DeviceType::Gpu)[1]);
  const Device& cpu = p.device(p.devices_of_type(DeviceType::Cpu)[0]);
  const std::uint64_t bytes = 1ull << 30;
  const double peer =
      p.transfer_time_s(gpu0.memory_node(), gpu1.memory_node(), bytes);
  const double pcie =
      p.transfer_time_s(cpu.memory_node(), gpu0.memory_node(), bytes);
  EXPECT_LT(peer, pcie);
}

TEST(Presets, EdgeNodeIsSmallAndHasDsp) {
  const Platform p = make_edge_node();
  EXPECT_EQ(p.devices_of_type(DeviceType::Dsp).size(), 1u);
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu).size(), 0u);
  // Edge memory far smaller than HPC memory.
  EXPECT_LT(p.memory_node(0).capacity_bytes(),
            make_hpc_node(1, 0, 0).memory_node(0).capacity_bytes());
}

TEST(Presets, EdgeDspIsLowPower) {
  const Platform p = make_edge_node();
  const Device& dsp = p.device(p.devices_of_type(DeviceType::Dsp)[0]);
  const Device& cpu = p.device(p.devices_of_type(DeviceType::Cpu)[0]);
  EXPECT_LT(dsp.nominal_dvfs().busy_watts, cpu.nominal_dvfs().busy_watts);
}

TEST(Presets, ClusterShape) {
  const Platform p = make_cluster(3, 4, 2);
  EXPECT_EQ(p.devices_of_type(DeviceType::Cpu).size(), 12u);
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu).size(), 6u);
  // 3 hosts + 6 GPU memories.
  EXPECT_EQ(p.memory_node_count(), 9u);
  EXPECT_TRUE(p.fully_connected());
}

TEST(Presets, ClusterInterNodeSlowerThanIntraNode) {
  const Platform p = make_cluster(2, 2, 1);
  // node0 host = memory 0; node1 host comes after node0's GPU memory.
  const std::uint64_t bytes = 256ull << 20;
  const double intra = p.transfer_time_s(0, 1, bytes);  // host0 -> gpu0
  double inter = 0.0;
  for (MemoryNodeId m = 1; m < p.memory_node_count(); ++m) {
    if (p.memory_node(m).name().find("node1-dram") != std::string::npos) {
      inter = p.transfer_time_s(0, m, bytes);
      break;
    }
  }
  EXPECT_GT(inter, intra);
}

TEST(Presets, ClusterRequiresOneNode) {
  EXPECT_THROW(make_cluster(0), util::InternalError);
}

class PresetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PresetSweep, HpcNodeScalesGpus) {
  const std::size_t gpus = GetParam();
  const Platform p = make_hpc_node(4, gpus, 0);
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu).size(), gpus);
  EXPECT_TRUE(p.fully_connected());
  // Every GPU has its own memory node with a route to host.
  for (DeviceId id : p.devices_of_type(DeviceType::Gpu)) {
    EXPECT_FALSE(p.route(0, p.device(id).memory_node()).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, PresetSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace hetflow::hw
