#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hetflow::util {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-1.5).dump(), "-1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectAndArrayBuilders) {
  Json doc = Json::object();
  doc["name"] = "hetflow";
  doc["count"] = 3;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["items"] = std::move(arr);
  EXPECT_EQ(doc.dump(), "{\"count\":3,\"items\":[1,\"two\"],\"name\":\"hetflow\"}");
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_TRUE(doc.contains("name"));
  EXPECT_FALSE(doc.contains("missing"));
}

TEST(Json, IndexingAutoVivifiesObject) {
  Json doc;  // null
  doc["a"]["b"] = 1;
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("a").at("b").as_number(), 1.0);
}

TEST(Json, AtThrowsOnMissingKey) {
  Json doc = Json::object();
  EXPECT_THROW(doc.at("nope"), ParseError);
}

TEST(Json, KindMismatchThrows) {
  EXPECT_THROW(Json(1).as_string(), InternalError);
  EXPECT_THROW(Json("x").as_number(), InternalError);
  EXPECT_THROW(Json(true).as_array(), InternalError);
  EXPECT_THROW(Json(nullptr).size(), InternalError);
}

TEST(Json, ParseScalars) {
  EXPECT_EQ(Json::parse("null"), Json(nullptr));
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse(" -3.5e2 "), Json(-350.0));
  EXPECT_EQ(Json::parse("\"hey\""), Json("hey"));
}

TEST(Json, ParseNested) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": null}], "c": true})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").as_array()[2].at("b"), Json(nullptr));
  EXPECT_TRUE(doc.at("c").as_bool());
}

TEST(Json, ParseEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
  EXPECT_EQ(Json::parse(R"("\\\/")").as_string(), "\\/");
}

TEST(Json, RoundTripThroughDump) {
  Json doc = Json::object();
  doc["pi"] = 3.14159;
  doc["neg"] = -7;
  doc["text"] = "line\nbreak \"quoted\"";
  doc["flags"] = Json::array();
  doc["flags"].push_back(true);
  doc["flags"].push_back(nullptr);
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  const Json reparsed_pretty = Json::parse(doc.dump_pretty());
  EXPECT_EQ(reparsed_pretty, doc);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("{'a':1}"), ParseError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), ParseError);
  EXPECT_THROW(Json::parse("\"bad\\u12g4\""), ParseError);
}

TEST(Json, ErrorsIncludeByteOffset) {
  try {
    Json::parse("[1, x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, LargeIntegersKeepPrecision) {
  EXPECT_EQ(Json(static_cast<std::int64_t>(1234567890123)).dump(),
            "1234567890123");
}

TEST(Json, PrettyPrintShape) {
  Json doc = Json::object();
  doc["a"] = 1;
  const std::string pretty = doc.dump_pretty();
  EXPECT_EQ(pretty, "{\n  \"a\": 1\n}");
}

TEST(Json, DeterministicKeyOrder) {
  Json doc = Json::object();
  doc["zebra"] = 1;
  doc["apple"] = 2;
  EXPECT_EQ(doc.dump(), "{\"apple\":2,\"zebra\":1}");
}

}  // namespace
}  // namespace hetflow::util
