// Fault injection and retry policies.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/mct.hpp"
#include "util/strings.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;

RuntimeOptions failing_options(double rate, FailurePolicy policy,
                               std::uint64_t seed = 42) {
  RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(rate);
  options.failure_policy = policy;
  options.seed = seed;
  return options;
}

TEST(Failure, TasksEventuallyCompleteWithRetrySame) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::RetrySameDevice));
  for (int i = 0; i < 20; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 20u);
  EXPECT_GT(rt.stats().failed_attempts, 0u);
}

TEST(Failure, TasksEventuallyCompleteWithReschedule) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::Reschedule));
  for (int i = 0; i < 20; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 20u);
  EXPECT_GT(rt.stats().failed_attempts, 0u);
}

TEST(Failure, FailedAttemptsInflateMakespan) {
  const hw::Platform p = hw::make_cpu_only(2);
  double clean_makespan = 0.0;
  {
    Runtime rt(p, std::make_unique<sched::MctScheduler>());
    for (int i = 0; i < 10; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
    }
    rt.wait_all();
    clean_makespan = rt.stats().makespan_s;
  }
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.5, FailurePolicy::RetrySameDevice));
  for (int i = 0; i < 10; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_GT(rt.stats().makespan_s, clean_makespan);
}

TEST(Failure, FailedSpansAppearInTrace) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(2.0, FailurePolicy::RetrySameDevice, 7));
  for (int i = 0; i < 10; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  std::size_t failed_spans = 0;
  std::size_t exec_spans = 0;
  for (const trace::Span& span : rt.tracer().spans()) {
    if (span.kind == trace::SpanKind::FailedExec) {
      ++failed_spans;
    } else if (span.kind == trace::SpanKind::Exec) {
      ++exec_spans;
    }
  }
  EXPECT_EQ(exec_spans, 10u);
  EXPECT_EQ(failed_spans, rt.stats().failed_attempts);
  EXPECT_GT(failed_spans, 0u);
  hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
}

TEST(Failure, FailedEnergyIsCharged) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime clean_rt(p, std::make_unique<sched::MctScheduler>());
  clean_rt.submit("t", cpu_only_codelet(), 6e9, {});
  clean_rt.wait_all();

  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(0.8, FailurePolicy::RetrySameDevice, 3));
  rt.submit("t", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  if (rt.stats().failed_attempts > 0) {
    EXPECT_GT(rt.stats().busy_energy_j(), clean_rt.stats().busy_energy_j());
  }
}

TEST(Failure, MaxAttemptsAborts) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options =
      failing_options(10000.0, FailurePolicy::RetrySameDevice);
  options.max_attempts = 5;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  rt.submit("doomed", cpu_only_codelet(), 6e9, {});
  EXPECT_THROW(rt.wait_all(), util::Error);
}

TEST(Failure, DependentsWaitForSuccessfulCompletion) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::Reschedule, 11));
  const auto d = rt.register_data("d", 1024);
  const TaskId w =
      rt.submit("w", cpu_only_codelet(), 5e9, {{d, data::AccessMode::Write}});
  const TaskId r =
      rt.submit("r", cpu_only_codelet(), 1e9, {{d, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_EQ(rt.task(r).state(), TaskState::Completed);
  EXPECT_GE(rt.task(r).times().started,
            rt.task(w).times().completed - 1e-12);
}

TEST(Failure, DeterministicAcrossRuns) {
  const hw::Platform p = hw::make_cpu_only(3);
  double makespans[2];
  std::size_t failures[2];
  for (int run = 0; run < 2; ++run) {
    Runtime rt(p, std::make_unique<sched::MctScheduler>(),
               failing_options(0.7, FailurePolicy::Reschedule, 123));
    for (int i = 0; i < 30; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
    }
    rt.wait_all();
    makespans[run] = rt.stats().makespan_s;
    failures[run] = rt.stats().failed_attempts;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
  EXPECT_EQ(failures[0], failures[1]);
}

TEST(Failure, AttemptsCounted) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::RetrySameDevice, 5));
  const TaskId id = rt.submit("t", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  EXPECT_GE(rt.task(id).attempts(), 1u);
  EXPECT_EQ(rt.task(id).state(), TaskState::Completed);
}

class FailureRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureRateSweep, AllWorkCompletesUnderAnyRate) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(GetParam(), FailurePolicy::Reschedule, 31));
  for (int i = 0; i < 25; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 1e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 25u);
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureRateSweep,
                         ::testing::Values(0.0, 0.1, 1.0, 5.0));

}  // namespace
}  // namespace hetflow::core
