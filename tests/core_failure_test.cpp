// Fault injection and retry policies.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/mct.hpp"
#include "util/strings.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;

RuntimeOptions failing_options(double rate, FailurePolicy policy,
                               std::uint64_t seed = 42) {
  RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(rate);
  options.failure_policy = policy;
  options.seed = seed;
  return options;
}

TEST(Failure, TasksEventuallyCompleteWithRetrySame) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::RetrySameDevice));
  for (int i = 0; i < 20; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 20u);
  EXPECT_GT(rt.stats().failed_attempts, 0u);
}

TEST(Failure, TasksEventuallyCompleteWithReschedule) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::Reschedule));
  for (int i = 0; i < 20; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 20u);
  EXPECT_GT(rt.stats().failed_attempts, 0u);
}

TEST(Failure, FailedAttemptsInflateMakespan) {
  const hw::Platform p = hw::make_cpu_only(2);
  double clean_makespan = 0.0;
  {
    Runtime rt(p, std::make_unique<sched::MctScheduler>());
    for (int i = 0; i < 10; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
    }
    rt.wait_all();
    clean_makespan = rt.stats().makespan_s;
  }
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.5, FailurePolicy::RetrySameDevice));
  for (int i = 0; i < 10; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  EXPECT_GT(rt.stats().makespan_s, clean_makespan);
}

TEST(Failure, FailedSpansAppearInTrace) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(2.0, FailurePolicy::RetrySameDevice, 7));
  for (int i = 0; i < 10; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  std::size_t failed_spans = 0;
  std::size_t exec_spans = 0;
  for (const trace::Span& span : rt.tracer().spans()) {
    if (span.kind == trace::SpanKind::FailedExec) {
      ++failed_spans;
    } else if (span.kind == trace::SpanKind::Exec) {
      ++exec_spans;
    }
  }
  EXPECT_EQ(exec_spans, 10u);
  EXPECT_EQ(failed_spans, rt.stats().failed_attempts);
  EXPECT_GT(failed_spans, 0u);
  hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
}

TEST(Failure, FailedEnergyIsCharged) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime clean_rt(p, std::make_unique<sched::MctScheduler>());
  clean_rt.submit("t", cpu_only_codelet(), 6e9, {});
  clean_rt.wait_all();

  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(0.8, FailurePolicy::RetrySameDevice, 3));
  rt.submit("t", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  if (rt.stats().failed_attempts > 0) {
    EXPECT_GT(rt.stats().busy_energy_j(), clean_rt.stats().busy_energy_j());
  }
}

TEST(Failure, MaxAttemptsAborts) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options =
      failing_options(10000.0, FailurePolicy::RetrySameDevice);
  options.max_attempts = 5;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  rt.submit("doomed", cpu_only_codelet(), 6e9, {});
  EXPECT_THROW(rt.wait_all(), util::Error);
}

TEST(Failure, DependentsWaitForSuccessfulCompletion) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::Reschedule, 11));
  const auto d = rt.register_data("d", 1024);
  const TaskId w =
      rt.submit("w", cpu_only_codelet(), 5e9, {{d, data::AccessMode::Write}});
  const TaskId r =
      rt.submit("r", cpu_only_codelet(), 1e9, {{d, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_EQ(rt.task(r).state(), TaskState::Completed);
  EXPECT_GE(rt.task(r).times().started,
            rt.task(w).times().completed - 1e-12);
}

TEST(Failure, DeterministicAcrossRuns) {
  const hw::Platform p = hw::make_cpu_only(3);
  double makespans[2];
  std::size_t failures[2];
  for (int run = 0; run < 2; ++run) {
    Runtime rt(p, std::make_unique<sched::MctScheduler>(),
               failing_options(0.7, FailurePolicy::Reschedule, 123));
    for (int i = 0; i < 30; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
    }
    rt.wait_all();
    makespans[run] = rt.stats().makespan_s;
    failures[run] = rt.stats().failed_attempts;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
  EXPECT_EQ(failures[0], failures[1]);
}

TEST(Failure, AttemptsCounted) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(1.0, FailurePolicy::RetrySameDevice, 5));
  const TaskId id = rt.submit("t", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  EXPECT_GE(rt.task(id).attempts(), 1u);
  EXPECT_EQ(rt.task(id).state(), TaskState::Completed);
}

class FailureRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureRateSweep, AllWorkCompletesUnderAnyRate) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>(),
             failing_options(GetParam(), FailurePolicy::Reschedule, 31));
  for (int i = 0; i < 25; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 1e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 25u);
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureRateSweep,
                         ::testing::Values(0.0, 0.1, 1.0, 5.0));

// --- RetryPolicy: backoff ---------------------------------------------------

TEST(Retry, BackoffDelayGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_s = 1.0;
  policy.backoff_factor = 2.0;
  policy.backoff_max_s = 10.0;
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(4), 8.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(5), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(50), 10.0);
}

TEST(Retry, ZeroBaseMeansImmediateRetry) {
  RetryPolicy policy;  // defaults: backoff_base_s = 0
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(3), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay_s(3, rng), 0.0);
}

TEST(Retry, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.backoff_base_s = 2.0;
  policy.backoff_jitter = 0.5;
  util::Rng a(99);
  util::Rng b(99);
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const double base = policy.backoff_delay_s(attempt);
    const double da = policy.backoff_delay_s(attempt, a);
    const double db = policy.backoff_delay_s(attempt, b);
    EXPECT_DOUBLE_EQ(da, db);
    EXPECT_GE(da, base);
    EXPECT_LT(da, base * 1.5);
  }
}

TEST(Retry, BackoffDelaysRetriesInSimulatedTime) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions immediate = failing_options(2.0, FailurePolicy::RetrySameDevice, 7);
  RuntimeOptions delayed = immediate;
  delayed.retry.backoff_base_s = 0.5;
  delayed.retry.backoff_jitter = 0.25;

  double makespans[2];
  std::size_t failures[2];
  int idx = 0;
  for (const RuntimeOptions& options : {immediate, delayed}) {
    Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
    for (int i = 0; i < 10; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
    }
    rt.wait_all();
    makespans[idx] = rt.stats().makespan_s;
    failures[idx] = rt.stats().failed_attempts;
    ++idx;
  }
  // Same seed, same failure draws — backoff only inserts idle gaps.
  ASSERT_GT(failures[0], 0u);
  EXPECT_GT(makespans[1], makespans[0]);
}

TEST(Retry, BackoffRunsAreDeterministic) {
  const hw::Platform p = hw::make_cpu_only(3);
  double makespans[2];
  for (int run = 0; run < 2; ++run) {
    RuntimeOptions options = failing_options(1.0, FailurePolicy::Reschedule, 17);
    options.retry.backoff_base_s = 0.2;
    options.retry.backoff_jitter = 0.5;
    Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
    for (int i = 0; i < 20; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
    }
    rt.wait_all();
    makespans[run] = rt.stats().makespan_s;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
}

// --- RetryPolicy: per-attempt timeout --------------------------------------

TEST(Retry, TimeoutKillsSlowTaskAndDropsIt) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;  // no fault injection: only the watchdog fires
  options.retry.timeout_s = 0.1;
  options.retry.max_attempts = 3;
  options.retry.on_exhausted = ExhaustionPolicy::Drop;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  // Short task finishes well inside the deadline; long task can never.
  const TaskId quick = rt.submit("quick", cpu_only_codelet(), 1e8, {});
  const TaskId slow = rt.submit("slow", cpu_only_codelet(), 1e12, {});
  rt.wait_all();
  EXPECT_EQ(rt.task(quick).state(), TaskState::Completed);
  EXPECT_EQ(rt.task(slow).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.stats().tasks_completed, 1u);
  EXPECT_EQ(rt.stats().tasks_lost, 1u);
  EXPECT_EQ(rt.stats().timeouts, 3u);
  EXPECT_EQ(rt.stats().failed_attempts, 3u);
  hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
}

TEST(Retry, TimeoutExhaustionAbortsByDefault) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.retry.timeout_s = 0.1;
  options.retry.max_attempts = 2;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  rt.submit("slow", cpu_only_codelet(), 1e12, {});
  EXPECT_THROW(rt.wait_all(), util::Error);
}

TEST(Retry, TimeoutBudgetLeavesFastTasksAlone) {
  const hw::Platform p = hw::make_cpu_only(2);
  RuntimeOptions options;
  options.retry.timeout_s = 1e6;  // generous: nothing should trip
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  for (int i = 0; i < 12; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 12u);
  EXPECT_EQ(rt.stats().timeouts, 0u);
  EXPECT_EQ(rt.stats().failed_attempts, 0u);
}

TEST(Retry, RetryMaxAttemptsOverridesRuntimeBudget) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options =
      failing_options(10000.0, FailurePolicy::RetrySameDevice);
  options.max_attempts = 1000;  // legacy budget would retry for a while
  options.retry.max_attempts = 4;
  options.retry.on_exhausted = ExhaustionPolicy::Drop;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  const TaskId id = rt.submit("doomed", cpu_only_codelet(), 6e9, {});
  rt.wait_all();  // Drop: the run completes instead of throwing
  EXPECT_EQ(rt.task(id).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.task(id).attempts(), 4u);
  EXPECT_EQ(rt.stats().tasks_lost, 1u);
}

// --- ExhaustionPolicy::Drop cascade ----------------------------------------

TEST(Retry, DropAbandonsDependentSubtree) {
  const hw::Platform p = hw::make_cpu_only(2);
  RuntimeOptions options;
  options.retry.timeout_s = 0.1;
  options.retry.max_attempts = 2;
  options.retry.on_exhausted = ExhaustionPolicy::Drop;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  const auto d = rt.register_data("d", 1 << 20);
  const TaskId w = rt.submit("w", cpu_only_codelet(), 1e12,
                             {{d, data::AccessMode::Write}});
  const TaskId r1 = rt.submit("r1", cpu_only_codelet(), 1e8,
                              {{d, data::AccessMode::Read}});
  const TaskId r2 = rt.submit("r2", cpu_only_codelet(), 1e8,
                              {{d, data::AccessMode::Read}});
  const TaskId free_task = rt.submit("free", cpu_only_codelet(), 1e8, {});
  rt.wait_all();
  EXPECT_EQ(rt.task(w).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.task(r1).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.task(r2).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.task(free_task).state(), TaskState::Completed);
  EXPECT_EQ(rt.stats().tasks_lost, 3u);
  EXPECT_EQ(rt.stats().tasks_completed, 1u);
}

TEST(Retry, SubmitAgainstAbandonedProducerIsAbandoned) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.retry.timeout_s = 0.1;
  options.retry.max_attempts = 1;
  options.retry.on_exhausted = ExhaustionPolicy::Drop;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  const auto d = rt.register_data("d", 1024);
  rt.submit("w", cpu_only_codelet(), 1e12, {{d, data::AccessMode::Write}});
  rt.wait_all();
  // A later wave depending on the lost producer is lost too, not stuck.
  const TaskId late = rt.submit("late", cpu_only_codelet(), 1e8,
                                {{d, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_EQ(rt.task(late).state(), TaskState::Abandoned);
  EXPECT_EQ(rt.stats().tasks_lost, 2u);
}

// --- Device blacklisting ----------------------------------------------------

RuntimeOptions gpu_flaky_options(std::uint64_t seed) {
  RuntimeOptions options;
  options.failure_model.set_rate(hw::DeviceType::Gpu, 60.0);
  options.failure_policy = FailurePolicy::Reschedule;
  options.seed = seed;
  options.max_attempts = 500;
  return options;
}

TEST(Retry, BlacklistQuarantinesFlakyDevice) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options = gpu_flaky_options(9);
  options.retry.blacklist_after = 2;
  options.retry.probation_s = 2.0;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  for (int i = 0; i < 40; ++i) {
    rt.submit(util::format("t%d", i),
              hetflow::testing::cpu_gpu_codelet(), 4e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 40u);
  EXPECT_GT(rt.stats().blacklist_events, 0u);
  std::size_t per_device = 0;
  for (const DeviceRunStats& d : rt.stats().devices) {
    per_device += d.blacklist_events;
  }
  EXPECT_EQ(per_device, rt.stats().blacklist_events);
  // Quarantine is lifted when the run drains: validate mode requires an
  // empty event queue, and the next wave must be schedulable everywhere.
  EXPECT_TRUE(rt.event_queue().empty());
  for (const hw::Device& device : p.devices()) {
    EXPECT_FALSE(rt.health().blacklisted(device.id()));
  }
}

TEST(Retry, BlacklistReducesFailedAttemptsOnFlakyDevice) {
  const hw::Platform p = hw::make_workstation();
  std::size_t failed_without = 0;
  std::size_t failed_with = 0;
  {
    Runtime rt(p, std::make_unique<sched::MctScheduler>(),
               gpu_flaky_options(21));
    for (int i = 0; i < 40; ++i) {
      rt.submit(util::format("t%d", i),
                hetflow::testing::cpu_gpu_codelet(), 4e9, {});
    }
    rt.wait_all();
    failed_without = rt.stats().failed_attempts;
  }
  {
    RuntimeOptions options = gpu_flaky_options(21);
    options.retry.blacklist_after = 2;
    options.retry.probation_s = 50.0;
    Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
    for (int i = 0; i < 40; ++i) {
      rt.submit(util::format("t%d", i),
                hetflow::testing::cpu_gpu_codelet(), 4e9, {});
    }
    rt.wait_all();
    failed_with = rt.stats().failed_attempts;
    EXPECT_GT(rt.stats().blacklist_events, 0u);
  }
  EXPECT_LT(failed_with, failed_without);
}

TEST(Retry, BlacklistValidatesCleanly) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options = gpu_flaky_options(33);
  options.retry.blacklist_after = 2;
  options.retry.probation_s = 100.0;  // timer outlives the run
  options.validate = true;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  for (int i = 0; i < 20; ++i) {
    rt.submit(util::format("t%d", i),
              hetflow::testing::cpu_gpu_codelet(), 4e9, {});
  }
  EXPECT_NO_THROW(rt.wait_all());
}

TEST(Retry, StaticSchedulerRejectsBlacklisting) {
  const hw::Platform p = hw::make_workstation();
  RuntimeOptions options;
  options.retry.blacklist_after = 2;
  EXPECT_THROW(Runtime(p, sched::make_scheduler("heft"), options),
               util::Error);
}

TEST(Retry, DeviceHealthStateMachine) {
  DeviceHealth health(2);
  EXPECT_FALSE(health.blacklisted(0));
  // Two strikes with blacklist_after=3: still healthy.
  EXPECT_FALSE(health.note_failure(0, 3, 10.0));
  EXPECT_FALSE(health.note_failure(0, 3, 10.0));
  EXPECT_FALSE(health.blacklisted(0));
  // A success resets the streak (no state transition while Healthy).
  EXPECT_FALSE(health.note_success(0));
  EXPECT_FALSE(health.note_failure(0, 3, 10.0));
  EXPECT_FALSE(health.note_failure(0, 3, 10.0));
  // Third consecutive strike quarantines.
  EXPECT_TRUE(health.note_failure(0, 3, 10.0));
  EXPECT_TRUE(health.blacklisted(0));
  EXPECT_DOUBLE_EQ(health.blacklisted_until(0), 10.0);
  EXPECT_EQ(health.blacklist_events(0), 1u);
  // Probation: one failure re-quarantines immediately.
  health.end_blacklist(0);
  EXPECT_FALSE(health.blacklisted(0));
  EXPECT_TRUE(health.note_failure(0, 3, 20.0));
  EXPECT_EQ(health.blacklist_events(0), 2u);
  // ...but a success during probation restores full health — and
  // reports the Probation -> Healthy transition to the caller.
  health.end_blacklist(0);
  EXPECT_TRUE(health.note_success(0));
  EXPECT_FALSE(health.note_failure(0, 3, 30.0));
  // Device 1 is independent.
  EXPECT_FALSE(health.blacklisted(1));
}

}  // namespace
}  // namespace hetflow::core
