#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hetflow::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(rng());
  }
  rng.reseed(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, SplitIsDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = Rng(7).split(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c1(), c2());
  }
}

TEST(Rng, SplitChildrenIndependent) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.split(42);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InternalError);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, LognormalUnitMeanConstruction) {
  // lognormal(-s^2/2, s) has mean 1 for any s.
  Rng rng(37);
  const double sigma = 0.5;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.lognormal(-sigma * sigma / 2.0, sigma);
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);
}

TEST(Rng, LognormalPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(43);
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.exponential(rate);
  }
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InternalError);
  EXPECT_THROW(rng.exponential(-1.0), InternalError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InternalError);
}

TEST(Rng, IndexBounds) {
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), InternalError);
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(61);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(67);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.weighted_index(weights) == 1) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.75, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), InternalError);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), InternalError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(71);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(73);
  std::vector<int> items(20);
  for (int i = 0; i < 20; ++i) {
    items[static_cast<std::size_t>(i)] = i;
  }
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(SplitMix, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<int> counts(5, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kN, 0.2, 0.01);
  }
}

TEST_P(RngSeedSweep, UniformVarianceAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ull, 42ull, 1234ull, 0xdeadbeefull,
                                           ~0ull));

TEST(Rng, StateRoundTripResumesStreamExactly) {
  Rng rng(97);
  for (int i = 0; i < 1000; ++i) {
    rng();  // advance mid-stream
  }
  const auto snapshot = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) {
    expected.push_back(rng());
  }
  Rng restored(0);
  restored.set_state(snapshot);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, AllZeroStateRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), Error);
  // A rejected restore must leave the stream untouched.
  Rng witness(1);
  EXPECT_EQ(rng(), witness());
}

}  // namespace
}  // namespace hetflow::util
