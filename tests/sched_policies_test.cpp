// Per-policy behavioral tests.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "sched/work_stealing.hpp"
#include "util/strings.hpp"

namespace hetflow::sched {
namespace {

using core::Runtime;
using core::TaskId;
using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

TEST(Registry, AllNamesConstruct) {
  for (const std::string& name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_scheduler("definitely-not-a-scheduler"),
               util::InvalidArgument);
}

TEST(Eager, UsesAllDevicesForBagOfTasks) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, make_scheduler("eager"));
  for (int i = 0; i < 16; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 3e9, {});
  }
  rt.wait_all();
  for (const auto& d : rt.stats().devices) {
    EXPECT_EQ(d.tasks_completed, 4u);
  }
}

TEST(Eager, SkipsIncapableDevices) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, make_scheduler("eager"));
  const auto gpu_only = core::Codelet::make("g", {{hw::DeviceType::Gpu, 0.9}});
  const auto cpu_only = core::Codelet::make("c", {{hw::DeviceType::Cpu, 0.5}});
  rt.submit("g0", gpu_only, 1e9, {});
  rt.submit("c0", cpu_only, 1e9, {});
  rt.wait_all();
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_EQ(rt.stats().devices[gpus[0]].tasks_completed, 1u);
  std::size_t cpu_tasks = 0;
  for (hw::DeviceId id : p.devices_of_type(hw::DeviceType::Cpu)) {
    cpu_tasks += rt.stats().devices[id].tasks_completed;
  }
  EXPECT_EQ(cpu_tasks, 1u);
}

TEST(RoundRobin, SpreadsTasksEvenly) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, make_scheduler("round-robin"));
  for (int i = 0; i < 12; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 1e9, {});
  }
  rt.wait_all();
  for (const auto& d : rt.stats().devices) {
    EXPECT_EQ(d.tasks_completed, 3u);
  }
}

TEST(Random, IsDeterministicGivenSeed) {
  const hw::Platform p = hw::make_cpu_only(4);
  double makespans[2];
  for (int run = 0; run < 2; ++run) {
    Runtime rt(p, make_scheduler("random", 77));
    for (int i = 0; i < 20; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
    }
    rt.wait_all();
    makespans[run] = rt.stats().makespan_s;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
}

TEST(Mct, PrefersFasterDeviceForHeavyWork) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, make_scheduler("mct"));
  rt.submit("heavy", cpu_gpu_codelet(0.5, 0.8), 40e9, {});
  rt.wait_all();
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_EQ(rt.stats().devices[gpus[0]].tasks_completed, 1u);
}

TEST(Mct, BalancesLoadAcrossEqualCores) {
  const hw::Platform p = hw::make_cpu_only(3);
  Runtime rt(p, make_scheduler("mct"));
  for (int i = 0; i < 9; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
  }
  rt.wait_all();
  for (const auto& d : rt.stats().devices) {
    EXPECT_EQ(d.tasks_completed, 3u);
  }
}

TEST(Dmda, AvoidsNeedlessTransfers) {
  // Data-heavy chain: dmda should keep the chain where the data lives
  // instead of bouncing it between memory nodes.
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  Runtime rt_dmda(p, make_scheduler("dmda"), options);
  Runtime rt_mct(p, make_scheduler("mct"), options);
  for (Runtime* rt : {&rt_dmda, &rt_mct}) {
    const auto d = rt->register_data("big", 512ull << 20);  // 512 MiB
    for (int i = 0; i < 6; ++i) {
      // Equal speed on both device types -> MCT sees no difference, dmda
      // sees the transfer cost.
      rt->submit(util::format("t%d", i),
                 core::Codelet::make("k", {{hw::DeviceType::Cpu, 0.5},
                                           {hw::DeviceType::Gpu, 0.02}}),
                 1e9, {{d, data::AccessMode::ReadWrite}});
    }
    rt->wait_all();
  }
  EXPECT_LE(rt_dmda.stats().transfers.bytes_moved,
            rt_mct.stats().transfers.bytes_moved);
  EXPECT_LE(rt_dmda.stats().makespan_s, rt_mct.stats().makespan_s + 1e-9);
}

TEST(Batch, MinMinCompletesEverything) {
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  for (const char* name : {"min-min", "max-min", "sufferage"}) {
    Runtime rt(p, make_scheduler(name));
    for (int i = 0; i < 30; ++i) {
      rt.submit(util::format("t%d", i), cpu_gpu_codelet(), 2e9, {});
    }
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_completed, 30u) << name;
    hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
  }
}

TEST(Batch, MinMinLoadBalancesHeterogeneousCosts) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, make_scheduler("min-min"));
  for (int i = 0; i < 8; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(),
              (i % 2 == 0) ? 4e9 : 1e9, {});
  }
  rt.wait_all();
  const auto& devices = rt.stats().devices;
  const double busy0 = devices[0].busy_seconds;
  const double busy1 = devices[1].busy_seconds;
  EXPECT_LT(std::abs(busy0 - busy1) / std::max(busy0, busy1), 0.4);
}

TEST(WorkStealing, GpuStealsHostLocalWork) {
  // All inputs live in host memory, so locality pushes every task onto
  // CPU deques; the (faster) GPU only gets work by stealing.
  const hw::Platform p = hw::make_workstation();
  auto scheduler = std::make_unique<WorkStealingScheduler>();
  const WorkStealingScheduler* ws = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  const auto d = rt.register_data("shared", 1 << 20);
  for (int i = 0; i < 40; ++i) {
    rt.submit(util::format("t%d", i), cpu_gpu_codelet(), 2e9,
              {{d, data::AccessMode::Read}});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 40u);
  EXPECT_GT(ws->steal_count(), 0u);
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_GT(rt.stats().devices[gpus[0]].tasks_completed, 0u);
}

TEST(WorkStealing, NoStealsWhenLoadIsBalanced) {
  const hw::Platform p = hw::make_cpu_only(4);
  auto scheduler = std::make_unique<WorkStealingScheduler>();
  const WorkStealingScheduler* ws = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  for (int i = 0; i < 16; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 16u);
  // Identical tasks on identical cores: locality push balances the
  // deques, so stealing stays rare.
  EXPECT_LE(ws->steal_count(), 4u);
}

TEST(CriticalPath, PrioritizesChainOverNoise) {
  // One long chain + many independent fillers on a single core: the
  // critical-path scheduler should start chain tasks as soon as they are
  // ready instead of draining fillers first.
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, make_scheduler("critical-path"));
  const auto d = rt.register_data("chain", 64);
  std::vector<TaskId> chain;
  for (int i = 0; i < 3; ++i) {
    chain.push_back(rt.submit(util::format("chain%d", i), cpu_only_codelet(),
                              2e9, {{d, data::AccessMode::ReadWrite}}));
  }
  std::vector<TaskId> fillers;
  for (int i = 0; i < 10; ++i) {
    fillers.push_back(
        rt.submit(util::format("fill%d", i), cpu_only_codelet(), 2e9, {}));
  }
  rt.wait_all();
  // The chain (critical path) should finish before the last filler.
  EXPECT_LT(rt.task(chain.back()).times().completed,
            rt.task(fillers.back()).times().completed);
}

TEST(EnergyAware, EdpNeverWorseEnergyThanPerformanceOnIdenticalWork) {
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  double energy_perf = 0.0;
  double energy_edp = 0.0;
  for (const char* name : {"energy-performance", "energy-edp"}) {
    Runtime rt(p, make_scheduler(name));
    for (int i = 0; i < 20; ++i) {
      rt.submit(util::format("t%d", i), cpu_gpu_codelet(), 4e9, {});
    }
    rt.wait_all();
    (std::string(name) == "energy-performance" ? energy_perf : energy_edp) =
        rt.stats().busy_energy_j();
  }
  EXPECT_LE(energy_edp, energy_perf * 1.001);
}

TEST(EnergyAware, EnergyObjectivePicksEfficientPoints) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt_perf(p, make_scheduler("energy-performance"));
  Runtime rt_energy(p, make_scheduler("energy-energy"));
  for (Runtime* rt : {&rt_perf, &rt_energy}) {
    for (int i = 0; i < 10; ++i) {
      rt->submit(util::format("t%d", i), cpu_only_codelet(), 4e9, {});
    }
    rt->wait_all();
  }
  // The energy objective trades time for Joules within its slack bound.
  EXPECT_LT(rt_energy.stats().busy_energy_j(),
            rt_perf.stats().busy_energy_j());
  EXPECT_GE(rt_energy.stats().makespan_s, rt_perf.stats().makespan_s);
}

TEST(AllPolicies, HandleEmptyRun) {
  const hw::Platform p = hw::make_workstation();
  for (const std::string& name : scheduler_names()) {
    Runtime rt(p, make_scheduler(name));
    EXPECT_DOUBLE_EQ(rt.wait_all(), 0.0) << name;
  }
}

TEST(AllPolicies, SingleDevicePlatform) {
  const hw::Platform p = hw::make_cpu_only(1);
  for (const std::string& name : scheduler_names()) {
    Runtime rt(p, make_scheduler(name));
    for (int i = 0; i < 5; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 1e9, {});
    }
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_completed, 5u) << name;
  }
}

}  // namespace
}  // namespace hetflow::sched
