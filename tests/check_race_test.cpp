// hetflow-verify race detector: known-bad runs must be flagged with the
// precise violation class, known-good runs must come back clean.
#include "check/race.hpp"

#include <gtest/gtest.h>

namespace hetflow::check {
namespace {

using data::AccessMode;

/// Two tasks touching handle 0 with the given modes and intervals;
/// `ordered` adds the dependency edge 0 -> 1.
RunRecord two_task_run(AccessMode mode_a, AccessMode mode_b, double start_a,
                       double end_a, double start_b, double end_b,
                       bool ordered) {
  RunRecord run;
  run.device_count = 2;
  run.node_count = 2;
  run.device_memory_node = {0, 1};
  run.handle_bytes = {1024};
  run.handle_home = {0};
  TaskRecord a{0, "a", {{0, mode_a}}, {}, 0, start_a, end_a, true};
  TaskRecord b{1, "b", {{0, mode_b}}, {}, 1, start_b, end_b, true};
  if (ordered) {
    b.dependencies.push_back(0);
  }
  run.tasks = {a, b};
  return run;
}

std::size_t count_kind(const std::vector<Violation>& violations,
                       ViolationKind kind) {
  std::size_t n = 0;
  for (const Violation& violation : violations) {
    n += violation.kind == kind ? 1 : 0;
  }
  return n;
}

TEST(CheckRaces, OverlappingUnorderedWritersAreARace) {
  const RunRecord run = two_task_run(AccessMode::Write, AccessMode::Write,
                                     0.0, 1.0, 0.5, 1.5, false);
  const auto violations = check_races(run);
  ASSERT_EQ(count_kind(violations, ViolationKind::ConflictingOverlap), 1u);
  EXPECT_NE(violations[0].message.find("WAW"), std::string::npos);
  EXPECT_EQ(violations[0].data, 0u);
}

TEST(CheckRaces, ReadOverlappingUnorderedWriterIsARace) {
  const auto raw = check_races(two_task_run(
      AccessMode::Write, AccessMode::Read, 0.0, 1.0, 0.5, 1.5, false));
  ASSERT_EQ(count_kind(raw, ViolationKind::ConflictingOverlap), 1u);
  EXPECT_NE(raw[0].message.find("RAW"), std::string::npos);

  const auto war = check_races(two_task_run(
      AccessMode::Read, AccessMode::Write, 0.0, 1.0, 0.5, 1.5, false));
  ASSERT_EQ(count_kind(war, ViolationKind::ConflictingOverlap), 1u);
  EXPECT_NE(war[0].message.find("WAR"), std::string::npos);
}

TEST(CheckRaces, SerializedConflictIsClean) {
  EXPECT_TRUE(check_races(two_task_run(AccessMode::Write, AccessMode::Write,
                                       0.0, 1.0, 1.0, 2.0, true))
                  .empty());
  // Disjoint intervals without an edge: not flagged (the detector is
  // interval-based; ordering comes from the executed schedule).
  EXPECT_EQ(count_kind(check_races(two_task_run(AccessMode::Write,
                                                AccessMode::Write, 0.0, 1.0,
                                                2.0, 3.0, false)),
                       ViolationKind::ConflictingOverlap),
            0u);
}

TEST(CheckRaces, OverlapDespiteEdgeIsADependencyViolation) {
  const RunRecord run = two_task_run(AccessMode::Write, AccessMode::Write,
                                     0.0, 1.0, 0.5, 1.5, true);
  const auto violations = check_races(run);
  EXPECT_EQ(count_kind(violations, ViolationKind::ConflictingOverlap), 0u);
  // Both the edge-timing check and the pair check report it.
  EXPECT_GE(count_kind(violations, ViolationKind::DependencyViolation), 1u);
}

TEST(CheckRaces, ReduxContributorsMayOverlap) {
  EXPECT_TRUE(check_races(two_task_run(AccessMode::Redux, AccessMode::Redux,
                                       0.0, 1.0, 0.5, 1.5, false))
                  .empty());
  // ...but a Redux contributor still conflicts with a plain reader.
  EXPECT_EQ(count_kind(check_races(two_task_run(AccessMode::Redux,
                                                AccessMode::Read, 0.0, 1.0,
                                                0.5, 1.5, false)),
                       ViolationKind::ConflictingOverlap),
            1u);
}

TEST(CheckRaces, ConcurrentReadersAreClean) {
  EXPECT_TRUE(check_races(two_task_run(AccessMode::Read, AccessMode::Read,
                                       0.0, 1.0, 0.5, 1.5, false))
                  .empty());
}

TEST(CheckRaces, TransitiveOrderingIsRecognized) {
  // a -> m -> b with a and b conflicting and (bogusly) overlapping:
  // the overlap must be reported as a dependency violation, not as an
  // unordered race — the transitive edge exists.
  RunRecord run;
  run.device_count = 1;
  run.node_count = 1;
  run.device_memory_node = {0};
  run.handle_bytes = {64, 64};
  run.handle_home = {0, 0};
  run.tasks = {
      {0, "a", {{0, AccessMode::Write}}, {}, 0, 0.0, 1.0, true},
      {1, "m", {{1, AccessMode::Write}}, {0}, 0, 1.0, 2.0, true},
      {2, "b", {{0, AccessMode::Write}}, {1}, 0, 0.5, 1.5, true},
  };
  const auto violations = check_races(run);
  EXPECT_EQ(count_kind(violations, ViolationKind::ConflictingOverlap), 0u);
  EXPECT_GE(count_kind(violations, ViolationKind::DependencyViolation), 1u);
}

TEST(CheckRaces, DanglingReferencesAreReported) {
  RunRecord run;
  run.device_count = 1;
  run.node_count = 1;
  run.device_memory_node = {0};
  run.handle_bytes = {64};
  run.handle_home = {0};
  run.tasks = {{0, "a", {{7, AccessMode::Read}}, {42}, 3, 0.0, 1.0, true}};
  const auto violations = check_races(run);
  // Unknown handle 7, unknown dependency 42, unknown device 3.
  EXPECT_EQ(count_kind(violations, ViolationKind::DanglingReference), 3u);
}

TEST(CheckRaces, CycleIsReported) {
  RunRecord run;
  run.device_count = 1;
  run.node_count = 1;
  run.device_memory_node = {0};
  run.handle_bytes = {64};
  run.handle_home = {0};
  run.tasks = {
      {0, "a", {{0, AccessMode::Read}}, {1}, 0, 0.0, 1.0, true},
      {1, "b", {{0, AccessMode::Read}}, {0}, 0, 1.0, 2.0, true},
  };
  EXPECT_EQ(count_kind(check_races(run), ViolationKind::Cycle), 1u);
}

TEST(CheckRaces, IncompleteTasksAreIgnoredByThePairPass) {
  RunRecord run = two_task_run(AccessMode::Write, AccessMode::Write, 0.0,
                               1.0, 0.5, 1.5, false);
  run.tasks[1].completed = false;
  EXPECT_TRUE(check_races(run).empty());
}

TEST(HappensBeforeOracle, ReachabilityIsTransitiveAndDirected) {
  RunRecord run;
  run.device_count = 1;
  run.node_count = 1;
  run.device_memory_node = {0};
  run.tasks = {
      {0, "a", {}, {}, 0, 0.0, 1.0, true},
      {1, "b", {}, {0}, 0, 1.0, 2.0, true},
      {2, "c", {}, {1}, 0, 2.0, 3.0, true},
      {3, "d", {}, {}, 0, 0.0, 1.0, true},  // independent
  };
  const HappensBefore hb(run);
  EXPECT_FALSE(hb.has_cycle());
  EXPECT_TRUE(hb.reaches(0, 2));
  EXPECT_FALSE(hb.reaches(2, 0));
  EXPECT_TRUE(hb.ordered(0, 2));
  EXPECT_FALSE(hb.ordered(0, 3));
  EXPECT_FALSE(hb.ordered(2, 3));
}

}  // namespace
}  // namespace hetflow::check
