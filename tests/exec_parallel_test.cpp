// Determinism under parallelism: the sweep engine must produce the same
// bytes whatever --jobs is, and util::Rng streams must not depend on
// which host thread runs the simulation.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "hw/presets.hpp"
#include "util/rng.hpp"
#include "workflow/campaign.hpp"

namespace hetflow::exec {
namespace {

std::string csv_of(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  write_sweep_header(out);
  write_sweep_rows(out, rows);
  return out.str();
}

// Property: over a grid of seeds x schedulers with noise and failure
// injection live, --jobs 1 and --jobs 8 emit byte-identical CSV.
TEST(ParallelDeterminism, SweepCsvIsByteIdenticalAcrossJobCounts) {
  SweepSpec spec;
  spec.workflows = {"montage:8", "ligo:6,3"};
  spec.platforms = {"workstation"};
  spec.schedulers = {"eager", "mct", "dmda", "heft"};
  spec.seeds = 3;
  spec.noise_cv = 0.3;
  spec.failure_rate = 0.5;  // recovery path exercised (RetrySameDevice)

  spec.jobs = 1;
  const std::string serial = csv_of(run_sweep(spec));
  EXPECT_NE(serial.find("montage-8"), std::string::npos);

  for (std::size_t jobs : {2, 8}) {
    spec.jobs = jobs;
    EXPECT_EQ(csv_of(run_sweep(spec)), serial) << "jobs=" << jobs;
  }
}

// Each simulation owns its Rng seeded from RuntimeOptions::seed, so the
// stream a cell sees is a function of the seed alone — produce the same
// values from the main thread and from pool workers.
TEST(ParallelDeterminism, RngStreamsAreThreadIndependent) {
  const auto draw = [](std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> values;
    values.reserve(64);
    for (int i = 0; i < 32; ++i) {
      values.push_back(rng.uniform());
      values.push_back(rng.normal(0.0, 1.0));
    }
    util::Rng child = rng.split(7);
    for (int i = 0; i < 8; ++i) {
      values.push_back(child.uniform());
    }
    return values;
  };

  const std::vector<std::uint64_t> seeds = {1, 2, 7, 42, 1u << 20};
  std::vector<std::vector<double>> serial;
  serial.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    serial.push_back(draw(seed));
  }
  const auto pooled = parallel_map<std::vector<double>>(
      seeds.size(), 4, [&](std::size_t i) { return draw(seeds[i]); });
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(pooled[i], serial[i]) << "seed " << seeds[i];
  }
}

// The campaign's parallel candidate scoring must not change the
// trajectory: same best point, same round count, any jobs value.
TEST(ParallelDeterminism, CampaignTrajectoryIndependentOfJobs) {
  const hw::Platform platform = hw::make_workstation();
  const workflow::ResponseSurface surface(
      workflow::ResponseSurface::Kind::Quadratic, 0.02);
  workflow::CampaignConfig config;
  config.max_evaluations = 64;
  config.seed = 5;

  config.jobs = 1;
  const workflow::CampaignResult serial = workflow::run_campaign(
      platform, surface, workflow::SearchStrategy::Surrogate, config);
  config.jobs = 8;
  const workflow::CampaignResult parallel = workflow::run_campaign(
      platform, surface, workflow::SearchStrategy::Surrogate, config);

  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  EXPECT_EQ(parallel.rounds, serial.rounds);
  EXPECT_EQ(parallel.reached_target, serial.reached_target);
  EXPECT_DOUBLE_EQ(parallel.best_value, serial.best_value);
  EXPECT_DOUBLE_EQ(parallel.best_x, serial.best_x);
  EXPECT_DOUBLE_EQ(parallel.best_y, serial.best_y);
  EXPECT_DOUBLE_EQ(parallel.makespan_s, serial.makespan_s);
  EXPECT_EQ(parallel.best_after_round, serial.best_after_round);
}

}  // namespace
}  // namespace hetflow::exec
