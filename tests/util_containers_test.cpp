// Unit tests for the hot-path containers backing the million-task core:
// SmallVector (inline edge/access lists), SmallFunction (inline event
// callbacks), StableVector (chunked task pool with stable addresses).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/small_function.hpp"
#include "util/small_vector.hpp"
#include "util/stable_vector.hpp"

namespace hetflow::util {
namespace {

// ---------------------------------------------------------------- SmallVector

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(SmallVector, WorksWithNonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back(std::string(200, 'x'));  // forces the spill with live strings
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], "beta");
  EXPECT_EQ(v[2].size(), 200u);
}

TEST(SmallVector, CopyIsDeep) {
  SmallVector<std::string, 2> a;
  a.push_back("one");
  a.push_back("two");
  a.push_back("three");
  SmallVector<std::string, 2> b(a);
  b[0] = "changed";
  EXPECT_EQ(a[0], "one");
  EXPECT_EQ(b.size(), a.size());
  a = b;
  EXPECT_EQ(a[0], "changed");
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) {
    a.push_back(i);
  }
  const int* heap_data = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), heap_data);  // buffer stolen, not copied
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move) — spec'd state
  a.push_back(7);          // moved-from object is reusable
  EXPECT_EQ(a[0], 7);
}

TEST(SmallVector, MoveOfInlineContentsMovesElements) {
  SmallVector<std::string, 4> a;
  a.push_back("only");
  SmallVector<std::string, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], "only");
}

TEST(SmallVector, IterationAndRangeFor) {
  SmallVector<int, 3> v{1, 2, 3, 4, 5};
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 15);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 5);
}

TEST(SmallVector, ComparesAgainstStdVector) {
  SmallVector<int, 2> v{1, 2, 3};
  EXPECT_TRUE(v == (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE((std::vector<int>{1, 2, 3}) == v);
  EXPECT_FALSE(v == (std::vector<int>{1, 2}));
}

TEST(SmallVector, ClearAndPopBackDestroyElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    ~Probe() {
      if (count != nullptr) {
        ++*count;
      }
    }
  };
  {
    SmallVector<Probe, 2> v;
    v.push_back(Probe{counter});
    v.push_back(Probe{counter});
    v.push_back(Probe{counter});  // spill: temporaries also destruct
    const int before = *counter;
    v.pop_back();
    EXPECT_EQ(*counter, before + 1);
    v.clear();
    EXPECT_EQ(*counter, before + 3);
    EXPECT_TRUE(v.empty());
  }
}

// ---------------------------------------------------------------- SmallFunction

TEST(SmallFunction, InvokesInlineLambda) {
  int hits = 0;
  SmallFunction<void(), 64> fn([&] { ++hits; });
  ASSERT_TRUE(fn != nullptr);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, NullByDefaultAndComparable) {
  SmallFunction<void(), 64> fn;
  EXPECT_TRUE(fn == nullptr);
  fn = [] {};
  EXPECT_TRUE(fn != nullptr);
  fn = nullptr;
  EXPECT_TRUE(fn == nullptr);
}

TEST(SmallFunction, MovePreservesCapturedState) {
  std::vector<int> seen;
  SmallFunction<void(), 64> a([&seen, tag = 42] { seen.push_back(tag); });
  SmallFunction<void(), 64> b(std::move(a));
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move)
  b();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 42);
}

TEST(SmallFunction, HeapFallbackForOversizeCaptures) {
  // Capture far beyond the 64-byte inline budget: must still work via
  // the heap path, including a move of the wrapper.
  std::array<std::uint64_t, 32> payload{};
  payload[31] = 9;
  std::uint64_t out = 0;
  SmallFunction<void(), 64> fn([payload, &out] { out = payload[31]; });
  SmallFunction<void(), 64> moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 9u);
}

TEST(SmallFunction, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    SmallFunction<void(), 64> fn([counter] {});
    EXPECT_EQ(counter.use_count(), 2);
    SmallFunction<void(), 64> other(std::move(fn));
    EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  }
  EXPECT_EQ(counter.use_count(), 1);  // both wrappers released exactly once
}

// ---------------------------------------------------------------- StableVector

TEST(StableVector, AddressesSurviveGrowth) {
  StableVector<std::uint64_t, 4> pool;
  std::vector<const std::uint64_t*> addresses;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    addresses.push_back(&pool.emplace_back(i));
  }
  ASSERT_EQ(pool.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(*addresses[i], i);          // pointer still valid
    EXPECT_EQ(&pool[i], addresses[i]);    // indexing agrees with it
  }
}

TEST(StableVector, IterationVisitsAllInOrder) {
  StableVector<int, 8> pool;
  for (int i = 0; i < 37; ++i) {  // not a multiple of the chunk size
    pool.emplace_back(i);
  }
  int expect = 0;
  for (const int& x : pool) {
    EXPECT_EQ(x, expect++);
  }
  EXPECT_EQ(expect, 37);
}

TEST(StableVector, NonTrivialElementsDestroyed) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    explicit Probe(std::shared_ptr<int> c) : count(std::move(c)) {}
    ~Probe() { ++*count; }
  };
  {
    StableVector<Probe, 4> pool;
    for (int i = 0; i < 10; ++i) {
      pool.emplace_back(counter);
    }
  }
  EXPECT_EQ(*counter, 10);
}

}  // namespace
}  // namespace hetflow::util
