#include "data/handle.hpp"

#include <gtest/gtest.h>

#include "data/access.hpp"

namespace hetflow::data {
namespace {

TEST(DataRegistry, RegisterAndQuery) {
  DataRegistry reg;
  const DataId a = reg.register_data("A", 100, 0);
  const DataId b = reg.register_data("B", 200, 1);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(reg.count(), 2u);
  EXPECT_EQ(reg.handle(a).name, "A");
  EXPECT_EQ(reg.handle(b).bytes, 200u);
  EXPECT_EQ(reg.handle(b).home_node, 1u);
  EXPECT_EQ(reg.total_bytes(), 300u);
}

TEST(DataRegistry, ZeroByteDataAllowed) {
  DataRegistry reg;
  const DataId id = reg.register_data("ctrl", 0, 0);
  EXPECT_EQ(reg.handle(id).bytes, 0u);
}

TEST(DataRegistry, OutOfRangeThrows) {
  DataRegistry reg;
  EXPECT_THROW(reg.handle(0), util::InternalError);
}

TEST(AccessMode, ReadWritePredicates) {
  EXPECT_TRUE(is_read(AccessMode::Read));
  EXPECT_TRUE(is_read(AccessMode::ReadWrite));
  EXPECT_FALSE(is_read(AccessMode::Write));
  EXPECT_TRUE(is_write(AccessMode::Write));
  EXPECT_TRUE(is_write(AccessMode::ReadWrite));
  EXPECT_FALSE(is_write(AccessMode::Read));
}

TEST(AccessMode, ToString) {
  EXPECT_STREQ(to_string(AccessMode::Read), "R");
  EXPECT_STREQ(to_string(AccessMode::Write), "W");
  EXPECT_STREQ(to_string(AccessMode::ReadWrite), "RW");
}

}  // namespace
}  // namespace hetflow::data
