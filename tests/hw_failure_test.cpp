#include "hw/failure.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hetflow::hw {
namespace {

TEST(FailureModel, DisabledByDefault) {
  const FailureModel m;
  EXPECT_FALSE(m.enabled());
  util::Rng rng(1);
  EXPECT_FALSE(m.sample_failure(rng, DeviceType::Cpu, 100.0).has_value());
}

TEST(FailureModel, UniformSetsAllTypes) {
  const FailureModel m = FailureModel::uniform(0.5);
  EXPECT_TRUE(m.enabled());
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Cpu), 0.5);
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Gpu), 0.5);
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Fpga), 0.5);
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Dsp), 0.5);
}

TEST(FailureModel, PerTypeRates) {
  FailureModel m;
  m.set_rate(DeviceType::Gpu, 2.0);
  EXPECT_TRUE(m.enabled());
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Cpu), 0.0);
  EXPECT_DOUBLE_EQ(m.rate(DeviceType::Gpu), 2.0);
  util::Rng rng(3);
  EXPECT_FALSE(m.sample_failure(rng, DeviceType::Cpu, 1000.0).has_value());
}

TEST(FailureModel, NegativeRateRejected) {
  FailureModel m;
  EXPECT_THROW(m.set_rate(DeviceType::Cpu, -0.1), util::InternalError);
}

TEST(FailureModel, FailureInstantWithinDuration) {
  const FailureModel m = FailureModel::uniform(50.0);  // very failure-prone
  util::Rng rng(7);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto instant = m.sample_failure(rng, DeviceType::Cpu, 0.1);
    if (instant.has_value()) {
      ++failures;
      EXPECT_GE(*instant, 0.0);
      EXPECT_LT(*instant, 0.1);
    }
  }
  // P(fail in 0.1s at rate 50/s) = 1 - e^-5 ~ 0.993.
  EXPECT_GT(failures, 950);
}

TEST(FailureModel, FailureProbabilityMatchesPoisson) {
  const double rate = 2.0;
  const double duration = 0.5;
  const FailureModel m = FailureModel::uniform(rate);
  util::Rng rng(11);
  int failures = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample_failure(rng, DeviceType::Gpu, duration).has_value()) {
      ++failures;
    }
  }
  const double expected = 1.0 - std::exp(-rate * duration);  // ~0.632
  EXPECT_NEAR(static_cast<double>(failures) / kN, expected, 0.01);
}

TEST(FailureModel, ZeroDurationNeverFails) {
  const FailureModel m = FailureModel::uniform(100.0);
  util::Rng rng(13);
  EXPECT_FALSE(m.sample_failure(rng, DeviceType::Cpu, 0.0).has_value());
}

TEST(FailureModel, DeterministicGivenSameRng) {
  const FailureModel m = FailureModel::uniform(5.0);
  util::Rng rng1(42);
  util::Rng rng2(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.sample_failure(rng1, DeviceType::Cpu, 0.3),
              m.sample_failure(rng2, DeviceType::Cpu, 0.3));
  }
}

}  // namespace
}  // namespace hetflow::hw
