// Determinism of the observability layer under host parallelism and
// checkpoint/restart: metrics snapshots, decision logs, and Chrome
// traces are a function of (workload, seed) alone — never of the number
// of worker threads, and never of whether a campaign was interrupted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "exec/thread_pool.hpp"
#include "hw/failure.hpp"
#include "hw/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/campaign.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow {
namespace {

/// Everything one instrumented run serializes, ready to compare bytes.
struct Artifacts {
  std::string metrics_json;
  std::string metrics_csv;
  std::string chrome_trace;
  std::string decisions;

  bool operator==(const Artifacts& other) const {
    return metrics_json == other.metrics_json &&
           metrics_csv == other.metrics_csv &&
           chrome_trace == other.chrome_trace &&
           decisions == other.decisions;
  }
};

/// One cell of the determinism grid: an instrumented run of a generated
/// workflow with noise and fault injection live (the hardest case for
/// byte-stability). `memoize` toggles the cost-model cache so the grid
/// can cross-compare the memoized and direct estimate paths.
Artifacts run_cell(const std::string& scheduler, std::uint64_t seed,
                   bool memoize = true) {
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = seed;
  options.noise_cv = 0.2;
  options.failure_model = hw::FailureModel::uniform(0.3);
  options.memoize_costs = memoize;
  core::Runtime rt(p, sched::make_scheduler(scheduler), options);
  workflow::submit_workflow(rt, workflow::make_montage(10),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  Artifacts out;
  out.metrics_json = rt.recorder()->metrics().to_json_string();
  out.metrics_csv = rt.recorder()->metrics().to_csv();
  out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
  out.decisions = rt.recorder()->decisions_jsonl(p);
  return out;
}

// Property: a grid of (scheduler x seed) cells run serially and run on
// an 8-worker pool produce byte-identical observability artifacts —
// the sweep-engine guarantee extended to the whole obs layer.
TEST(ObsDeterminism, ArtifactsAreByteIdenticalAcrossJobCounts) {
  struct Cell {
    std::string scheduler;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const char* scheduler : {"mct", "dmda", "dmdas", "work-stealing"}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      cells.push_back({scheduler, seed});
    }
  }

  const auto run_grid = [&](std::size_t jobs) {
    return exec::parallel_map<Artifacts>(
        cells.size(), jobs, [&](std::size_t i) {
          return run_cell(cells[i].scheduler, cells[i].seed);
        });
  };

  const std::vector<Artifacts> serial = run_grid(1);
  for (const Artifacts& artifacts : serial) {
    EXPECT_FALSE(artifacts.metrics_json.empty());
    EXPECT_FALSE(artifacts.decisions.empty());
  }
  const std::vector<Artifacts> pooled = run_grid(8);
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(pooled[i] == serial[i])
        << cells[i].scheduler << " seed " << cells[i].seed;
  }
}

// Repeating the same instrumented run in-process reproduces the same
// bytes (no hidden global state leaks between Runtime instances).
TEST(ObsDeterminism, RepeatedRunsReproduceTheSameBytes) {
  const Artifacts first = run_cell("dmda", 11);
  const Artifacts second = run_cell("dmda", 11);
  EXPECT_TRUE(first == second);
}

// Cross-property: the cost-model cache (memoize_costs, the default) and
// the direct recompute path serialize identical bytes even when the
// memoized grid runs on an 8-worker pool and the direct grid serially —
// memoization, name interning and host parallelism together leave no
// fingerprint in any artifact.
TEST(ObsDeterminism, MemoizedPooledGridMatchesDirectSerialGrid) {
  struct Cell {
    std::string scheduler;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const char* scheduler : {"mct", "dmda", "dmdas", "work-stealing"}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      cells.push_back({scheduler, seed});
    }
  }
  std::vector<Artifacts> direct_serial;
  direct_serial.reserve(cells.size());
  for (const Cell& cell : cells) {
    direct_serial.push_back(run_cell(cell.scheduler, cell.seed, false));
  }
  const std::vector<Artifacts> memo_pooled = exec::parallel_map<Artifacts>(
      cells.size(), 8, [&](std::size_t i) {
        return run_cell(cells[i].scheduler, cells[i].seed, true);
      });
  ASSERT_EQ(memo_pooled.size(), direct_serial.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(memo_pooled[i] == direct_serial[i])
        << cells[i].scheduler << " seed " << cells[i].seed;
  }
}

/// A cancel-heavy fault run: tight per-attempt timeouts race the
/// watchdog against every completion, so each task churns slab slots in
/// the EventQueue (schedule + cancel of whichever event loses), and
/// retries with jittered backoff re-enter the queue repeatedly.
Artifacts run_cancel_heavy_cell(const std::string& scheduler,
                                std::uint64_t seed, std::uint64_t* timeouts) {
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = seed;
  options.noise_cv = 0.6;  // fat tail: some attempts blow the budget
  options.failure_model = hw::FailureModel::uniform(0.2);
  options.retry.max_attempts = 6;
  options.retry.timeout_s = 0.05;
  options.retry.backoff_base_s = 0.01;
  options.retry.backoff_jitter = 0.5;
  options.retry.on_exhausted = core::ExhaustionPolicy::Drop;
  core::Runtime rt(p, sched::make_scheduler(scheduler), options);
  workflow::submit_workflow(rt, workflow::make_montage(10),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  if (timeouts != nullptr) {
    *timeouts = rt.stats().timeouts;
  }
  Artifacts out;
  out.metrics_json = rt.recorder()->metrics().to_json_string();
  out.metrics_csv = rt.recorder()->metrics().to_csv();
  out.chrome_trace = obs::chrome_trace_json(rt.tracer(), p, rt.recorder());
  out.decisions = rt.recorder()->decisions_jsonl(p);
  return out;
}

// Property: the slab event queue's slot recycling (cancel -> free-list
// -> reuse with a bumped generation) leaves no trace in any serialized
// artifact — a cancel-heavy run is byte-reproducible per seed, serial
// or on an 8-worker pool.
TEST(ObsDeterminism, CancelHeavyFaultRunsAreByteIdentical) {
  struct Cell {
    std::string scheduler;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const char* scheduler : {"eager", "dmda", "work-stealing"}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      cells.push_back({scheduler, seed});
    }
  }
  std::uint64_t total_timeouts = 0;
  std::vector<Artifacts> serial;
  serial.reserve(cells.size());
  for (const Cell& cell : cells) {
    std::uint64_t cell_timeouts = 0;
    serial.push_back(
        run_cancel_heavy_cell(cell.scheduler, cell.seed, &cell_timeouts));
    total_timeouts += cell_timeouts;
  }
  // The configuration must actually exercise the watchdog-cancel path,
  // or the property above is vacuously true.
  EXPECT_GT(total_timeouts, 0u);

  const std::vector<Artifacts> pooled = exec::parallel_map<Artifacts>(
      cells.size(), 8, [&](std::size_t i) {
        return run_cancel_heavy_cell(cells[i].scheduler, cells[i].seed,
                                     nullptr);
      });
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(pooled[i] == serial[i])
        << cells[i].scheduler << " seed " << cells[i].seed;
  }
}

// A campaign killed mid-flight and resumed from its checkpoint must end
// with the same metrics snapshot and decision log as one that was never
// interrupted: resume replays the completed simulation batches into a
// fresh runtime, so the recorder sees the identical event sequence.
TEST(ObsDeterminism, CampaignMetricsSurviveCheckpointResume) {
  const hw::Platform platform = hw::make_workstation();
  // Noiseless surface with an unreachable target (excess 0), so every
  // variant runs the full budget and the round counts line up exactly.
  const workflow::ResponseSurface surface(
      workflow::ResponseSurface::Kind::Quadratic, 0.0);
  workflow::CampaignConfig config;
  config.max_evaluations = 48;
  config.batch_size = 8;
  config.target_excess = 0.0;
  config.seed = 5;
  config.metrics = true;

  const workflow::CampaignResult uninterrupted = workflow::run_campaign(
      platform, surface, workflow::SearchStrategy::Surrogate, config);
  ASSERT_FALSE(uninterrupted.metrics_json.empty());
  ASSERT_FALSE(uninterrupted.decision_log.empty());

  const std::string checkpoint =
      ::testing::TempDir() + "/obs_campaign_checkpoint.json";
  workflow::CampaignConfig sliced = config;
  sliced.checkpoint_path = checkpoint;
  sliced.max_rounds = 2;  // simulate a kill after two rounds
  const workflow::CampaignResult slice = workflow::run_campaign(
      platform, surface, workflow::SearchStrategy::Surrogate, sliced);
  ASSERT_EQ(slice.rounds, 2u);

  const workflow::CampaignResult resumed =
      workflow::resume_campaign(platform, checkpoint);
  EXPECT_EQ(resumed.rounds, uninterrupted.rounds);
  EXPECT_DOUBLE_EQ(resumed.best_value, uninterrupted.best_value);
  EXPECT_EQ(resumed.metrics_json, uninterrupted.metrics_json);
  EXPECT_EQ(resumed.decision_log, uninterrupted.decision_log);
}

// The metrics flag itself round-trips through the checkpoint: a resumed
// campaign with metrics off stays off (and produces no snapshots).
TEST(ObsDeterminism, MetricsOffCampaignResumesWithoutSnapshots) {
  const hw::Platform platform = hw::make_workstation();
  const workflow::ResponseSurface surface(
      workflow::ResponseSurface::Kind::Quadratic, 0.0);
  workflow::CampaignConfig config;
  config.max_evaluations = 32;
  config.batch_size = 8;
  config.seed = 3;
  config.checkpoint_path =
      ::testing::TempDir() + "/obs_campaign_nometrics.json";
  config.max_rounds = 1;
  const workflow::CampaignResult slice = workflow::run_campaign(
      platform, surface, workflow::SearchStrategy::Grid, config);
  ASSERT_GE(slice.rounds, 1u);
  const workflow::CampaignResult resumed =
      workflow::resume_campaign(platform, config.checkpoint_path);
  EXPECT_TRUE(resumed.metrics_json.empty());
  EXPECT_TRUE(resumed.decision_log.empty());
}

}  // namespace
}  // namespace hetflow
