// Shared fixtures for runtime/scheduler tests.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "trace/tracer.hpp"

namespace hetflow::testing {

inline core::CodeletPtr cpu_only_codelet(double efficiency = 0.5) {
  return core::Codelet::make("cpu-only",
                             {{hw::DeviceType::Cpu, efficiency}});
}

inline core::CodeletPtr cpu_gpu_codelet(double cpu_eff = 0.5,
                                        double gpu_eff = 0.8) {
  return core::Codelet::make(
      "cpu-gpu", {{hw::DeviceType::Cpu, cpu_eff},
                  {hw::DeviceType::Gpu, gpu_eff}});
}

/// Asserts that no two successful execution spans overlap on any device.
inline void expect_no_device_overlap(const trace::Tracer& tracer,
                                     const hw::Platform& platform) {
  for (const hw::Device& device : platform.devices()) {
    std::vector<std::pair<double, double>> intervals;
    for (const trace::Span& span : tracer.spans()) {
      if (span.device == device.id()) {
        intervals.push_back({span.start, span.end});
      }
    }
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i - 1].second, intervals[i].first + 1e-9)
          << "overlap on " << device.name();
    }
  }
}

/// Start/end times per task id from the trace (successful attempts only).
inline std::map<std::uint64_t, std::pair<double, double>> exec_windows(
    const trace::Tracer& tracer) {
  std::map<std::uint64_t, std::pair<double, double>> windows;
  for (const trace::Span& span : tracer.spans()) {
    if (span.kind == trace::SpanKind::Exec) {
      windows[span.task_id] = {span.start, span.end};
    }
  }
  return windows;
}

}  // namespace hetflow::testing
