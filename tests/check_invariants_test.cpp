// hetflow-verify invariant checkers: fabricate known-bad directory and
// trace snapshots and assert the precise violation class is reported.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "check/record.hpp"
#include "data/coherence.hpp"
#include "trace/tracer.hpp"

namespace hetflow::check {
namespace {

using data::ReplicaState;

constexpr std::uint64_t kKiB = 1024;

/// One handle (512 bytes, home node 0), two nodes of 1 KiB each, the
/// handle resident Shared on its home. All invariants hold.
DirectoryRecord clean_directory() {
  DirectoryRecord directory;
  directory.node_count = 2;
  directory.handle_bytes = {512};
  directory.capacity_bytes = {kKiB, kKiB};
  directory.states = {ReplicaState::Shared, ReplicaState::Invalid};
  directory.claimed_resident_bytes = {512, 0};
  return directory;
}

std::size_t count_kind(const std::vector<Violation>& violations,
                       ViolationKind kind) {
  std::size_t n = 0;
  for (const Violation& violation : violations) {
    n += violation.kind == kind ? 1 : 0;
  }
  return n;
}

TEST(CheckDirectory, CleanDirectoryPasses) {
  EXPECT_TRUE(check_directory(clean_directory()).empty());
}

TEST(CheckDirectory, TwoModifiedOwnersAreReported) {
  DirectoryRecord directory = clean_directory();
  directory.states = {ReplicaState::Modified, ReplicaState::Modified};
  directory.claimed_resident_bytes = {512, 512};
  const auto violations = check_directory(directory);
  EXPECT_GE(count_kind(violations, ViolationKind::CoherenceState), 1u);
}

TEST(CheckDirectory, ModifiedPlusSharedIsReported) {
  DirectoryRecord directory = clean_directory();
  directory.states = {ReplicaState::Modified, ReplicaState::Shared};
  directory.claimed_resident_bytes = {512, 512};
  EXPECT_GE(count_kind(check_directory(directory),
                       ViolationKind::CoherenceState),
            1u);
}

TEST(CheckDirectory, NoValidReplicaIsReported) {
  // A read would come from an Invalid replica: data loss.
  DirectoryRecord directory = clean_directory();
  directory.states = {ReplicaState::Invalid, ReplicaState::Invalid};
  directory.claimed_resident_bytes = {0, 0};
  const auto violations = check_directory(directory);
  EXPECT_EQ(count_kind(violations, ViolationKind::CoherenceState), 1u);
  EXPECT_EQ(violations[0].data, 0u);
}

TEST(CheckDirectory, ByteAccountingMismatchIsReported) {
  DirectoryRecord directory = clean_directory();
  directory.claimed_resident_bytes = {256, 0};  // truth is 512
  const auto violations = check_directory(directory);
  ASSERT_EQ(count_kind(violations, ViolationKind::ByteAccounting), 1u);
  EXPECT_EQ(violations[0].node, 0u);
}

TEST(CheckDirectory, CapacityOverflowIsReported) {
  DirectoryRecord directory;
  directory.node_count = 1;
  directory.handle_bytes = {kKiB, kKiB};
  directory.capacity_bytes = {kKiB};  // two 1 KiB replicas on a 1 KiB node
  directory.states = {ReplicaState::Shared, ReplicaState::Shared};
  directory.claimed_resident_bytes = {2 * kKiB};
  const auto violations = check_directory(directory);
  ASSERT_EQ(count_kind(violations, ViolationKind::CapacityExceeded), 1u);
  EXPECT_EQ(violations[0].node, 0u);
}

/// A run with two devices and the given spans (no tasks — check_trace
/// only consumes spans and the device table).
RunRecord trace_run(std::vector<trace::Span> spans) {
  RunRecord run;
  run.device_count = 2;
  run.node_count = 1;
  run.device_memory_node = {0, 0};
  run.spans = std::move(spans);
  return run;
}

TEST(CheckTrace, CleanTracePasses) {
  EXPECT_TRUE(check_trace(trace_run({
                              {0, "a", 0, 0.0, 1.0, trace::SpanKind::Exec},
                              {1, "b", 1, 0.5, 1.5, trace::SpanKind::Exec},
                              {2, "c", 0, 1.0, 2.0, trace::SpanKind::Exec},
                          }))
                  .empty());
}

TEST(CheckTrace, SpanEndingBeforeItStartsIsReported) {
  const auto violations = check_trace(trace_run({
      {0, "a", 0, 2.0, 1.0, trace::SpanKind::Exec},
  }));
  EXPECT_GE(count_kind(violations, ViolationKind::TimeMonotonicity), 1u);
}

TEST(CheckTrace, NonMonotoneEmissionOrderIsReported) {
  // Completion times must be non-decreasing in emission order: the
  // tracer appends a span when its task completes.
  const auto violations = check_trace(trace_run({
      {0, "a", 0, 0.0, 5.0, trace::SpanKind::Exec},
      {1, "b", 1, 0.0, 1.0, trace::SpanKind::Exec},
  }));
  EXPECT_EQ(count_kind(violations, ViolationKind::TimeMonotonicity), 1u);
}

TEST(CheckTrace, UnknownDeviceIsReported) {
  const auto violations = check_trace(trace_run({
      {0, "a", 7, 0.0, 1.0, trace::SpanKind::Exec},
  }));
  EXPECT_EQ(count_kind(violations, ViolationKind::DanglingReference), 1u);
}

TEST(CheckTrace, OverlappingSpansOnOneDeviceAreReported) {
  const auto violations = check_trace(trace_run({
      {0, "a", 0, 0.0, 2.0, trace::SpanKind::Exec},
      {1, "b", 0, 1.0, 2.5, trace::SpanKind::Exec},
  }));
  ASSERT_EQ(count_kind(violations, ViolationKind::DeviceOverlap), 1u);
  EXPECT_EQ(violations[0].node, 0u);
}

TEST(CheckTrace, BackToBackSpansOnOneDeviceAreClean) {
  EXPECT_TRUE(check_trace(trace_run({
                              {0, "a", 0, 0.0, 1.0, trace::SpanKind::Exec},
                              {1, "b", 0, 1.0, 2.0, trace::SpanKind::Exec},
                          }))
                  .empty());
}

TEST(CheckReportApi, SummaryListsViolationsAndCoverage) {
  CheckReport report;
  report.note_check("races", 42);
  EXPECT_TRUE(report.passed());
  report.add({ViolationKind::CapacityExceeded, "node 0 over capacity",
              Violation::npos, Violation::npos, Violation::npos, 0});
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.count(ViolationKind::CapacityExceeded), 1u);
  EXPECT_EQ(report.count(ViolationKind::Cycle), 0u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("capacity-exceeded"), std::string::npos);
  EXPECT_NE(summary.find("42"), std::string::npos);
}

}  // namespace
}  // namespace hetflow::check
