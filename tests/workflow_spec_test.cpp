#include "workflow/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hw/presets.hpp"
#include "hw/serialize.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/generators.hpp"

namespace hetflow::workflow {
namespace {

TEST(WorkflowSpec, GeneratorSpecs) {
  EXPECT_EQ(make_workflow_from_spec("montage:8").name(), "montage-8");
  EXPECT_EQ(make_workflow_from_spec("epigenomics:2,3").name(),
            "epigenomics-2x3");
  EXPECT_EQ(make_workflow_from_spec("cybershake:2,5").name(),
            "cybershake-2x5");
  EXPECT_EQ(make_workflow_from_spec("ligo:6,2").name(), "ligo-6");
  EXPECT_EQ(make_workflow_from_spec("cholesky:4").task_count(), 20u);
  EXPECT_EQ(make_workflow_from_spec("lu:3,512").name(), "lu-3x3");
  EXPECT_EQ(make_workflow_from_spec("wavefront:3").task_count(), 9u);
  EXPECT_EQ(make_workflow_from_spec("chain:5").task_count(), 5u);
  EXPECT_EQ(make_workflow_from_spec("bag:7").task_count(), 7u);
  EXPECT_EQ(make_workflow_from_spec("layered:3,4,0.5,9").task_count(), 12u);
  EXPECT_EQ(make_workflow_from_spec("forkjoin:4,2,0.5").task_count(), 10u);
}

TEST(WorkflowSpec, DefaultsWhenArgsOmitted) {
  EXPECT_EQ(make_workflow_from_spec("montage").name(), "montage-32");
  EXPECT_EQ(make_workflow_from_spec("cholesky").task_count(), 120u);
}

TEST(WorkflowSpec, ScaleForwarded) {
  const Workflow small = make_workflow_from_spec("montage:8", 1.0);
  const Workflow big = make_workflow_from_spec("montage:8", 2.0);
  EXPECT_NEAR(big.total_flops() / small.total_flops(), 2.0, 1e-9);
}

TEST(WorkflowSpec, ScaledSuffixesInArgs) {
  const Workflow w = make_workflow_from_spec("bag:10,2G,4Mi");
  EXPECT_DOUBLE_EQ(w.tasks()[0].flops, 2e9);
  EXPECT_EQ(w.files()[1].bytes, 4u << 20);
}

TEST(WorkflowSpec, DagFileLoaded) {
  const std::string path = ::testing::TempDir() + "/spec_test.dag";
  save_dagfile(make_ligo(4, 2), path);
  const Workflow loaded = make_workflow_from_spec(path);
  EXPECT_EQ(loaded.name(), "ligo-4");
  std::remove(path.c_str());
}

TEST(WorkflowSpec, Errors) {
  EXPECT_THROW(make_workflow_from_spec("nope:3"), ParseError);
  EXPECT_THROW(make_workflow_from_spec("montage:abc"), ParseError);
  EXPECT_THROW(make_workflow_from_spec("montage:8,,2"), ParseError);
}

TEST(PlatformSpec, Presets) {
  EXPECT_EQ(make_platform_from_spec("workstation").name(), "workstation");
  EXPECT_EQ(make_platform_from_spec("edge").name(), "edge-node");
  EXPECT_EQ(make_platform_from_spec("cpu:6").device_count(), 6u);
  const hw::Platform hpc = make_platform_from_spec("hpc:4,2,1");
  EXPECT_EQ(hpc.devices_of_type(hw::DeviceType::Gpu).size(), 2u);
  EXPECT_EQ(hpc.devices_of_type(hw::DeviceType::Fpga).size(), 1u);
  EXPECT_EQ(make_platform_from_spec("cluster:2,2,1").device_count(), 6u);
}

TEST(PlatformSpec, JsonFileLoaded) {
  const std::string path = ::testing::TempDir() + "/spec_platform.json";
  hw::save_platform(hw::make_workstation(), path);
  const hw::Platform loaded = make_platform_from_spec(path);
  EXPECT_EQ(loaded.name(), "workstation");
  EXPECT_EQ(loaded.device_count(), 5u);
  std::remove(path.c_str());
}

TEST(PlatformSpec, Errors) {
  EXPECT_THROW(make_platform_from_spec("mainframe"), ParseError);
  EXPECT_THROW(make_platform_from_spec("missing.json"), Error);
}

}  // namespace
}  // namespace hetflow::workflow
