// Robustness sweeps: every policy under adverse runtime options (noise +
// failures + tight memory), and byte-mutation fuzzing of the parsers
// (they must throw ParseError/Error, never crash or hang).
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow {
namespace {

class AdversePolicySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversePolicySweep, NoiseAndFailuresNeverBreakInvariants) {
  const hw::Platform platform = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(12);
  const auto lib = workflow::CodeletLibrary::standard();
  core::RuntimeOptions options;
  options.noise_cv = 0.4;
  options.failure_model = hw::FailureModel::uniform(0.3);
  options.failure_policy = core::FailurePolicy::Reschedule;
  options.seed = 77;

  core::Runtime rt(platform, sched::make_scheduler(GetParam()), options);
  workflow::submit_workflow(rt, wf, lib);
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, wf.task_count());
  hetflow::testing::expect_no_device_overlap(rt.tracer(), platform);
}

TEST_P(AdversePolicySweep, RetrySamePolicyAlsoCompletes) {
  const hw::Platform platform = hw::make_workstation();
  const workflow::Workflow wf = workflow::make_ligo(8, 4);
  const auto lib = workflow::CodeletLibrary::standard();
  core::RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(0.5);
  options.failure_policy = core::FailurePolicy::RetrySameDevice;
  options.max_attempts = 100;
  const auto stats = workflow::run_workflow(platform, GetParam(), wf, lib,
                                            options);
  EXPECT_EQ(stats.tasks_completed, wf.task_count());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AdversePolicySweep,
    ::testing::ValuesIn(sched::scheduler_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

hw::Platform tight_vram_platform() {
  hw::PlatformBuilder b("tight");
  const auto host = b.add_memory_node("host", 2ull << 30);
  const auto vram = b.add_memory_node("vram", 16ull << 20);  // tiny
  b.add_device("cpu0", hw::DeviceType::Cpu, 12.0, host);
  b.add_device("gpu0", hw::DeviceType::Gpu, 600.0, vram, 8e-6);
  b.add_link(host, vram, 16.0, 4e-6);
  return b.build();
}

TEST(TightMemory, EverySchedulerSurvivesEvictionPressure) {
  // Files of a few MiB against a 16 MiB device memory: heavy eviction
  // churn, but each individual working set fits.
  const hw::Platform platform = tight_vram_platform();
  const workflow::Workflow wf =
      workflow::make_random_layered(6, 4, 3.0, 5, 2e6);
  const auto lib = workflow::CodeletLibrary::standard();
  for (const std::string& policy : sched::scheduler_names()) {
    const auto stats = workflow::run_workflow(platform, policy, wf, lib);
    EXPECT_EQ(stats.tasks_completed, wf.task_count()) << policy;
  }
}

TEST(TightMemory, CostModelPoliciesRouteAroundOversizedWorkingSets) {
  // Files larger than the whole device memory: infeasible on the GPU.
  // Every cost-model policy must keep those tasks on the host.
  const hw::Platform platform = tight_vram_platform();
  const workflow::Workflow wf =
      workflow::make_random_layered(5, 3, 3.0, 5, 5e8);  // ~0.5 GB files
  const auto lib = workflow::CodeletLibrary::standard();
  for (const char* policy : {"mct", "dmda", "dmdas", "min-min", "max-min",
                             "sufferage", "heft", "cpop", "energy-edp",
                             "energy-performance", "energy-energy"}) {
    const auto stats = workflow::run_workflow(platform, policy, wf, lib);
    EXPECT_EQ(stats.tasks_completed, wf.task_count()) << policy;
    EXPECT_EQ(stats.devices[1].tasks_completed, 0u) << policy;  // gpu0
  }
}

TEST(FuzzLite, JsonByteMutationsNeverCrash) {
  const std::string base =
      R"({"name": "x", "values": [1, 2.5, true, null, "s\n"],
          "nested": {"k": -3e2}})";
  util::Rng rng(123);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      (void)util::Json::parse(mutated);
      ++parsed_ok;
    } catch (const util::Error&) {
      // expected for most mutations
    }
  }
  // Some mutations still parse (e.g. digit swaps) — but not all.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 3000);
}

TEST(FuzzLite, JsonTruncationsNeverCrash) {
  const std::string base =
      R"({"a": [1, {"b": "str"}, false], "c": 2})";
  for (std::size_t len = 0; len < base.size(); ++len) {
    try {
      (void)util::Json::parse(base.substr(0, len));
    } catch (const util::Error&) {
    }
  }
  SUCCEED();
}

TEST(FuzzLite, DagfileMutationsNeverCrash) {
  const std::string base = workflow::to_dagfile(workflow::make_ligo(3, 2));
  util::Rng rng(321);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      (void)workflow::parse_dagfile(mutated);
    } catch (const util::Error&) {
    }
  }
  SUCCEED();
}

TEST(FuzzLite, DagfileLineShufflesParseOrThrow) {
  // Reordering lines keeps the format parseable or raises ParseError
  // (never UB): files may be declared after first use only implicitly.
  const std::string base = workflow::to_dagfile(workflow::make_montage(4));
  std::vector<std::string> lines = util::split(base, '\n');
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    rng.shuffle(lines);
    try {
      (void)workflow::parse_dagfile(util::join(lines, "\n"));
    } catch (const util::Error&) {
    }
  }
  SUCCEED();
}

TEST(Determinism, WholeStackBitExactAcrossManySeeds) {
  const hw::Platform platform = hw::make_hpc_node(4, 2, 1);
  const auto lib = workflow::CodeletLibrary::standard();
  for (std::uint64_t seed : {1ull, 99ull, 31337ull}) {
    core::RuntimeOptions options;
    options.seed = seed;
    options.noise_cv = 0.3;
    options.failure_model = hw::FailureModel::uniform(0.2);
    const workflow::Workflow wf = workflow::make_cybershake(2, 10);
    const auto a = workflow::run_workflow(platform, "dmdas", wf, lib,
                                          options);
    const auto b = workflow::run_workflow(platform, "dmdas", wf, lib,
                                          options);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s) << "seed " << seed;
    EXPECT_EQ(a.failed_attempts, b.failed_attempts);
    EXPECT_EQ(a.transfers.bytes_moved, b.transfers.bytes_moved);
  }
}

}  // namespace
}  // namespace hetflow
