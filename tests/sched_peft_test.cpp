#include "sched/peft.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::sched {
namespace {

using core::Runtime;
using core::TaskId;
using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

TEST(Peft, ExitTasksHaveZeroPriority) {
  // Priority is the mean optimistic remaining cost: 0 at the sinks,
  // strictly positive upstream.
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<PeftScheduler>());
  const auto d = rt.register_data("d", 1024);
  const TaskId first = rt.submit("first", cpu_only_codelet(), 1e9,
                                 {{d, data::AccessMode::Write}});
  const TaskId last = rt.submit("last", cpu_only_codelet(), 1e9,
                                {{d, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_DOUBLE_EQ(rt.task(last).priority(), 0.0);
  EXPECT_GT(rt.task(first).priority(), 0.0);
}

TEST(Peft, LookaheadKeepsChainOnFastDeviceDespiteGreedyBait) {
  // A GPU-friendly chain: a greedy EFT might place the first (cheap)
  // stage on an idle CPU; PEFT's OCT term sees the expensive descendants
  // and starts the chain on the GPU to avoid the later migration.
  const hw::Platform p = hw::make_workstation();
  auto scheduler = std::make_unique<PeftScheduler>();
  Runtime rt(p, std::move(scheduler));
  const auto big = rt.register_data("state", 1ull << 30);  // 1 GiB carried
  std::vector<TaskId> chain;
  for (int s = 0; s < 4; ++s) {
    chain.push_back(rt.submit(
        util::format("stage%d", s),
        // Efficient on GPU, possible on CPU.
        core::Codelet::make(util::format("k%d", s),
                            {{hw::DeviceType::Cpu, 0.5},
                             {hw::DeviceType::Gpu, 0.9}}),
        s == 0 ? 1e8 : 40e9, {{big, data::AccessMode::ReadWrite}}));
  }
  rt.wait_all();
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  // Whole chain on the GPU, including the cheap head.
  for (TaskId id : chain) {
    EXPECT_EQ(rt.task(id).device(), gpus[0]);
  }
}

TEST(Peft, CompetitiveWithHeftAcrossWorkflows) {
  const hw::Platform p = hw::make_hpc_node(8, 2, 0);
  const auto lib = workflow::CodeletLibrary::standard();
  for (const workflow::Workflow& wf :
       {workflow::make_montage(32), workflow::make_ligo(24, 6),
        workflow::make_cholesky(8, 2048)}) {
    const double peft = workflow::run_workflow(p, "peft", wf, lib).makespan_s;
    const double heft = workflow::run_workflow(p, "heft", wf, lib).makespan_s;
    const double random =
        workflow::run_workflow(p, "random", wf, lib).makespan_s;
    EXPECT_LT(peft, random) << wf.name();
    EXPECT_LT(peft, heft * 1.25) << wf.name();  // within HEFT's ballpark
  }
}

TEST(Peft, HandlesMixedSupportChains) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<PeftScheduler>());
  const auto cpu_only = core::Codelet::make("c", {{hw::DeviceType::Cpu, 0.5}});
  const auto gpu_only = core::Codelet::make("g", {{hw::DeviceType::Gpu, 0.8}});
  const auto d = rt.register_data("d", 1024);
  for (int s = 0; s < 6; ++s) {
    rt.submit(util::format("s%d", s), (s % 2 == 0) ? cpu_only : gpu_only,
              2e9, {{d, data::AccessMode::ReadWrite}});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 6u);
}

TEST(Peft, DeterministicReplay) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 1);
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_sipht(6, 6);
  const auto a = workflow::run_workflow(p, "peft", wf, lib);
  const auto b = workflow::run_workflow(p, "peft", wf, lib);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.transfers.bytes_moved, b.transfers.bytes_moved);
}

TEST(Peft, MultiWaveReplans) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<PeftScheduler>());
  rt.submit("w1", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  rt.submit("w2", cpu_gpu_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 2u);
}

}  // namespace
}  // namespace hetflow::sched
