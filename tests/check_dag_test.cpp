// hetflow-verify workflow validator: unlike Workflow::validate() (throws
// on the first problem) check_workflow() reports every structural issue.
#include "check/dag.hpp"

#include <gtest/gtest.h>

#include "workflow/workflow.hpp"

namespace hetflow::check {
namespace {

std::size_t count_kind(const std::vector<Violation>& violations,
                       ViolationKind kind) {
  std::size_t n = 0;
  for (const Violation& violation : violations) {
    n += violation.kind == kind ? 1 : 0;
  }
  return n;
}

TEST(CheckWorkflow, CleanDiamondPasses) {
  workflow::Workflow wf("diamond");
  const auto in = wf.add_file("in.dat", 1024);
  const auto left = wf.add_file("left.dat", 1024);
  const auto right = wf.add_file("right.dat", 1024);
  const auto out = wf.add_file("out.dat", 1024);
  wf.add_task("split_l", "generic", 1e6, {in}, {left});
  wf.add_task("split_r", "generic", 1e6, {in}, {right});
  wf.add_task("join", "generic", 1e6, {left, right}, {out});
  EXPECT_TRUE(check_workflow(wf).empty());
}

TEST(CheckWorkflow, EmptyKindIsReported) {
  workflow::Workflow wf("w");
  const auto f = wf.add_file("f", 1);
  wf.add_task("t", "", 1.0, {}, {f});
  EXPECT_EQ(count_kind(check_workflow(wf), ViolationKind::AccessMode), 1u);
}

TEST(CheckWorkflow, OutOfRangeFileIndexIsReported) {
  workflow::Workflow wf("w");
  wf.add_file("f", 1);
  wf.add_task("t", "generic", 1.0, {5}, {});
  EXPECT_EQ(count_kind(check_workflow(wf), ViolationKind::DanglingReference),
            1u);
}

TEST(CheckWorkflow, DuplicateInputIsReported) {
  workflow::Workflow wf("w");
  const auto f = wf.add_file("f", 1);
  wf.add_task("t", "generic", 1.0, {f, f}, {});
  EXPECT_EQ(count_kind(check_workflow(wf), ViolationKind::AccessMode), 1u);
}

TEST(CheckWorkflow, FileBothInputAndOutputIsReported) {
  workflow::Workflow wf("w");
  const auto f = wf.add_file("f", 1);
  wf.add_task("t", "generic", 1.0, {f}, {f});
  EXPECT_GE(count_kind(check_workflow(wf), ViolationKind::AccessMode), 1u);
}

TEST(CheckWorkflow, TwoProducersOfOneFileAreReported) {
  workflow::Workflow wf("w");
  const auto f = wf.add_file("f", 1);
  wf.add_task("p1", "generic", 1.0, {}, {f});
  wf.add_task("p2", "generic", 1.0, {}, {f});
  EXPECT_EQ(count_kind(check_workflow(wf), ViolationKind::AccessMode), 1u);
}

TEST(CheckWorkflow, CycleIsReported) {
  // t1 produces a and consumes b; t2 produces b and consumes a.
  workflow::Workflow wf("w");
  const auto a = wf.add_file("a", 1);
  const auto b = wf.add_file("b", 1);
  wf.add_task("t1", "generic", 1.0, {b}, {a});
  wf.add_task("t2", "generic", 1.0, {a}, {b});
  EXPECT_EQ(count_kind(check_workflow(wf), ViolationKind::Cycle), 1u);
}

TEST(CheckWorkflow, AllViolationsAreCollectedAtOnce) {
  // One workflow, three independent problems — the validator must not
  // stop at the first one.
  workflow::Workflow wf("w");
  const auto f = wf.add_file("f", 1);
  wf.add_task("bad_kind", "", 1.0, {}, {});
  wf.add_task("dup_in", "generic", 1.0, {f, f}, {});
  wf.add_task("dangling", "generic", 1.0, {99}, {});
  const auto violations = check_workflow(wf);
  EXPECT_EQ(count_kind(violations, ViolationKind::AccessMode), 2u);
  EXPECT_EQ(count_kind(violations, ViolationKind::DanglingReference), 1u);
}

}  // namespace
}  // namespace hetflow::check
