#include "trace/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::trace {
namespace {

Tracer tiny_trace() {
  Tracer tracer;
  tracer.add(Span{1, "gemm", 0, 0.0, 0.6, SpanKind::Exec});
  tracer.add(Span{2, "fft", 4, 0.2, 0.9, SpanKind::Exec});
  tracer.add(Span{3, "gemm", 0, 0.7, 1.0, SpanKind::FailedExec});
  return tracer;
}

TEST(Svg, ContainsStructuralElements) {
  const hw::Platform p = hw::make_workstation();
  const std::string svg = to_svg(tiny_trace(), p);
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One lane label per device.
  for (const hw::Device& d : p.devices()) {
    EXPECT_NE(svg.find(">" + d.name() + "<"), std::string::npos);
  }
  // Span tooltips carry names and the FAILED marker.
  EXPECT_NE(svg.find("gemm [0.000000, 0.600000]"), std::string::npos);
  EXPECT_NE(svg.find("FAILED"), std::string::npos);
}

TEST(Svg, SameNameSameColor) {
  const hw::Platform p = hw::make_workstation();
  const std::string svg = to_svg(tiny_trace(), p);
  // Two successful "gemm"/"fft" spans: find their fill colors.
  const std::size_t first = svg.find("hsl(");
  ASSERT_NE(first, std::string::npos);
  // Failed attempts are always the fixed red.
  EXPECT_NE(svg.find("#e06060"), std::string::npos);
}

TEST(Svg, EmptyTraceStillValid) {
  const hw::Platform p = hw::make_cpu_only(2);
  const Tracer tracer;
  const std::string svg = to_svg(tracer, p);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, TitleAndEscaping) {
  const hw::Platform p = hw::make_cpu_only(1);
  Tracer tracer;
  tracer.add(Span{1, "a<b>&\"c\"", 0, 0.0, 1.0, SpanKind::Exec});
  SvgOptions options;
  options.title = "run <1> & co";
  const std::string svg = to_svg(tracer, p, options);
  EXPECT_NE(svg.find("run &lt;1&gt; &amp; co"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c&quot;"), std::string::npos);
  EXPECT_EQ(svg.find("<b>"), std::string::npos);
}

TEST(Svg, FullRunRendersEveryTask) {
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  core::Runtime rt(p, sched::make_scheduler("dmda"));
  workflow::submit_workflow(rt, workflow::make_montage(8),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  const std::string svg = to_svg(rt.tracer(), p);
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  // Background + one lane rect per device + one rect per task.
  EXPECT_GE(rects, 1 + p.device_count() + rt.stats().tasks_completed);
}

TEST(Svg, SaveWritesFile) {
  const hw::Platform p = hw::make_cpu_only(1);
  const std::string path = ::testing::TempDir() + "/hetflow_gantt.svg";
  save_svg(tiny_trace(), p, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(save_svg(tiny_trace(), p, "/nonexistent/dir/x.svg"),
               util::Error);
}

}  // namespace
}  // namespace hetflow::trace
