#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace hetflow::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  csv.row({"x", "y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  EXPECT_THROW(csv.row({"1", "2"}), InternalError);
}

TEST(Csv, HeaderMustBeFirstAndOnce) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), InternalError);
}

TEST(Csv, EmptyHeaderRejected) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.header({}), InternalError);
}

TEST(Csv, RowsWithoutHeaderAllowed) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"free", "form"});
  csv.row({"x"});  // no width constraint without a header
  EXPECT_EQ(out.str(), "free,form\nx\n");
}

TEST(Csv, NumericRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.row_values({1.5, 2.25});
  EXPECT_EQ(out.str(), "x,y\n1.5,2.25\n");
}

}  // namespace
}  // namespace hetflow::util
