// Fixture: other half of the include cycle for layer-cycle.
#pragma once

#include "util/cycle_a.hpp"
