// Fixture: lock-order-cycle must flag both the a->b / b->a ordering
// cycle and the immediate self-deadlock re-acquisition.
#include <mutex>

std::mutex mu_a;
std::mutex mu_b;

void first() {
  std::lock_guard<std::mutex> ga(mu_a);
  std::lock_guard<std::mutex> gb(mu_b);
}

void second() {
  std::lock_guard<std::mutex> gb(mu_b);
  std::lock_guard<std::mutex> ga(mu_a);
}

void reentrant() {
  std::lock_guard<std::mutex> g1(mu_a);
  std::lock_guard<std::mutex> g2(mu_a);
}
