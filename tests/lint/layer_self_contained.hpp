// Fixture: uses std::string without including <string>, so the
// layer-self-contained compiler probe must fail on it.
#pragma once

inline std::string fixture_name() { return "bad"; }
