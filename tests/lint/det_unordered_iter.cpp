// Fixture: det-unordered-iter must flag both the range-for and the
// explicit .begin() walk over an unordered container.
#include <string>
#include <unordered_map>

int sum(const std::unordered_map<std::string, int>& weights) {
  int total = 0;
  for (const auto& [name, w] : weights) {
    total += w;
  }
  for (auto it = weights.begin(); it != weights.end(); ++it) {
    total += it->second;
  }
  return total;
}
