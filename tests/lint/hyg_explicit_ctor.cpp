// Fixture: single-argument converting constructor without `explicit` —
// hyg-explicit-ctor must flag it when the file maps into src/.
class Widget {
 public:
  Widget(int size) : size_(size) {}

 private:
  int size_;
};
