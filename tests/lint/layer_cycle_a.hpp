// Fixture: half of an include cycle (a -> b -> a) for layer-cycle.
#pragma once

#include "util/cycle_b.hpp"
