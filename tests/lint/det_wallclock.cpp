// Fixture: det-wallclock must flag std::chrono::steady_clock.
#include <chrono>

double now_s() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
