// Fixture: mapped to src/util/bad_dep.cpp by lint_test — util/ reaching
// up into core/ must trip layer-dag.
#include "core/runtime_stub.hpp"

int use_core() { return core_stub(); }
