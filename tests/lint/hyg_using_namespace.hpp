// Fixture: using-namespace at header scope — hyg-using-namespace must
// warn (it leaks the namespace into every includer).
#pragma once

#include <vector>

using namespace std;

inline vector<int> three() { return {1, 2, 3}; }
