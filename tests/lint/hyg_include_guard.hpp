// Fixture: header with neither #pragma once nor an include guard —
// hyg-include-guard must warn.
inline int unguarded() { return 1; }
