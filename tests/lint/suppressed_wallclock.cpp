// Fixture: the annotation on the line above the violation must suppress
// the det-wallclock finding (it still appears, marked suppressed).
#include <chrono>

double now_s() {
  // hetflow-lint: allow(det-wallclock)
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
