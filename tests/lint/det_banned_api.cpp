// Fixture: det-banned-api must flag <random>, std::mt19937, rand() and
// time(nullptr). Fed to the analyzer as virtual src/ code by lint_test.
#include <random>

int entropy() {
  std::mt19937 gen(42);
  return rand() + static_cast<int>(time(nullptr));
}
