// Fixture: lock-callback must flag the std::function member invoked
// while the guard is still held.
#include <functional>
#include <mutex>

struct Notifier {
  std::mutex mu_;
  std::function<void(int)> on_done;

  void fire(int value) {
    std::lock_guard<std::mutex> lock(mu_);
    on_done(value);
  }
};
