// Fixture: det-pointer-order must flag the pointer-keyed std::map and
// the pointer-formatting conversion in the printf string.
#include <cstdio>
#include <map>

struct Task {};

void dump(const std::map<Task*, int>& by_task) {
  for (const auto& [task, count] : by_task) {
    std::printf("%p: %d\n", static_cast<const void*>(task), count);
  }
}
