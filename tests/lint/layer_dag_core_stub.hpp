// Fixture: mapped to src/core/runtime_stub.hpp — the illegal include
// target for the layer-dag fixture.
#pragma once

inline int core_stub() { return 1; }
