// HEFT static scheduler tests.
#include "sched/heft.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::sched {
namespace {

using core::Runtime;
using core::TaskId;
using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

TEST(Heft, PlansEveryTask) {
  const hw::Platform p = hw::make_workstation();
  auto scheduler = std::make_unique<HeftScheduler>();
  const HeftScheduler* heft = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  std::vector<TaskId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(
        rt.submit(util::format("t%d", i), cpu_gpu_codelet(), 2e9, {}));
  }
  rt.wait_all();
  for (TaskId id : ids) {
    EXPECT_LT(heft->planned_device(id), p.device_count());
  }
  EXPECT_GT(heft->planned_makespan(), 0.0);
}

TEST(Heft, TasksRunOnPlannedDevices) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  auto scheduler = std::make_unique<HeftScheduler>();
  const HeftScheduler* heft = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  const workflow::Workflow wf = workflow::make_montage(8);
  const auto ids = workflow::submit_workflow(
      rt, wf, workflow::CodeletLibrary::standard());
  rt.wait_all();
  for (TaskId id : ids) {
    EXPECT_EQ(rt.task(id).device(), heft->planned_device(id));
  }
}

TEST(Heft, PlannedMakespanApproximatesAchieved) {
  // With exact cost models (no noise, analytic estimates) HEFT's internal
  // schedule should track the achieved makespan closely.
  const hw::Platform p = hw::make_hpc_node(8, 2, 0);
  auto scheduler = std::make_unique<HeftScheduler>();
  const HeftScheduler* heft = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  const workflow::Workflow wf = workflow::make_montage(24);
  workflow::submit_workflow(rt, wf, workflow::CodeletLibrary::standard());
  rt.wait_all();
  const double achieved = rt.stats().makespan_s;
  const double planned = heft->planned_makespan();
  EXPECT_GT(planned, 0.0);
  // Within 2x in either direction (transfer contention is not in the
  // static model; insertion slots may not materialize at runtime).
  EXPECT_LT(achieved, planned * 2.0);
  EXPECT_GT(achieved, planned * 0.5);
}

TEST(Heft, SetsPrioritiesToUpwardRanks) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<HeftScheduler>());
  const auto d = rt.register_data("d", 1024);
  const TaskId first = rt.submit("first", cpu_only_codelet(), 1e9,
                                 {{d, data::AccessMode::Write}});
  const TaskId last = rt.submit("last", cpu_only_codelet(), 1e9,
                                {{d, data::AccessMode::Read}});
  rt.wait_all();
  // Upstream tasks have strictly larger upward ranks.
  EXPECT_GT(rt.task(first).priority(), rt.task(last).priority());
}

TEST(Heft, BeatsRandomOnHeterogeneousWorkflow) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(32);
  const auto lib = workflow::CodeletLibrary::standard();
  const auto heft = workflow::run_workflow(p, "heft", wf, lib);
  const auto random = workflow::run_workflow(p, "random", wf, lib);
  EXPECT_LT(heft.makespan_s, random.makespan_s);
}

TEST(Heft, SecondWaveGetsFreshPlan) {
  const hw::Platform p = hw::make_cpu_only(2);
  auto scheduler = std::make_unique<HeftScheduler>();
  const HeftScheduler* heft = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  const TaskId a = rt.submit("a", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  const double first_plan = heft->planned_makespan();
  const TaskId b = rt.submit("b", cpu_only_codelet(), 4e9, {});
  rt.wait_all();
  EXPECT_EQ(rt.task(a).state(), core::TaskState::Completed);
  EXPECT_EQ(rt.task(b).state(), core::TaskState::Completed);
  EXPECT_NE(heft->planned_makespan(), first_plan);
}

TEST(Heft, HandlesSingleTask) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<HeftScheduler>());
  rt.submit("solo", cpu_gpu_codelet(), 20e9, {});
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 1u);
  // Heavy dense task should be planned on the GPU.
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_EQ(rt.stats().devices[gpus[0]].tasks_completed, 1u);
}

TEST(Heft, RespectsDeviceSupportConstraints) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<HeftScheduler>());
  const auto cpu_only = core::Codelet::make("c", {{hw::DeviceType::Cpu, 0.5}});
  std::vector<TaskId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(rt.submit(util::format("t%d", i), cpu_only, 2e9, {}));
  }
  rt.wait_all();
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_EQ(rt.stats().devices[gpus[0]].tasks_completed, 0u);
  EXPECT_EQ(rt.stats().tasks_completed, 8u);
}

TEST(Heft, DeclaresFullGraphRequirement) {
  EXPECT_TRUE(HeftScheduler().requires_full_graph());
  EXPECT_FALSE(make_scheduler("dmda")->requires_full_graph());
  EXPECT_FALSE(make_scheduler("eager")->requires_full_graph());
}

// Regression: handing a failed attempt back to a static plan
// (FailurePolicy::Reschedule) used to trip a bare plan-table assertion
// or stall the run; the runtime now rejects it with a clear error the
// moment the first hand-back happens.
TEST(Heft, RescheduleFailurePolicyRejectedAtHandBack) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(12);
  const auto lib = workflow::CodeletLibrary::standard();
  core::RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(5.0);  // failures certain
  options.failure_policy = core::FailurePolicy::Reschedule;
  try {
    workflow::run_workflow(p, "heft", wf, lib, options);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "static scheduler 'heft' cannot accept dynamically "
                  "submitted tasks"),
              std::string::npos)
        << e.what();
  }
}

TEST(Heft, DeterministicPlan) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf = workflow::make_ligo(12, 4);
  const auto lib = workflow::CodeletLibrary::standard();
  const auto run1 = workflow::run_workflow(p, "heft", wf, lib);
  const auto run2 = workflow::run_workflow(p, "heft", wf, lib);
  EXPECT_DOUBLE_EQ(run1.makespan_s, run2.makespan_s);
  EXPECT_EQ(run1.transfers.bytes_moved, run2.transfers.bytes_moved);
}

}  // namespace
}  // namespace hetflow::sched
