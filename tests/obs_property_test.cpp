// Cross-layer properties of the observability exports, checked for
// every instrumented scheduling policy:
//
//   1. The Chrome trace reconciles with RunStats: per device, the summed
//      durations of the exported "X" spans equal busy_seconds.
//   2. The metrics snapshot reconciles with RunStats — bitwise for the
//      second-valued counters, which accumulate in the same order as the
//      stats fields they mirror.
//   3. The decision log tells the truth: the LAST logged decision for
//      each task names the device the task actually ran on, as recorded
//      by the hetflow-verify audit snapshot.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "check/audit.hpp"
#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

namespace hetflow {
namespace {

constexpr const char* kSchedulers[] = {"mct", "dmda", "dmdas",
                                       "work-stealing"};

/// An instrumented run of a generated workflow; noise keeps exec times
/// irregular so accidental reconciliations can't pass. (Runtime is not
/// movable — the scheduler context points back into it — so it lives on
/// the heap.)
std::unique_ptr<core::Runtime> make_run(const hw::Platform& platform,
                                        const std::string& scheduler) {
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = 13;
  options.noise_cv = 0.15;
  auto runtime = std::make_unique<core::Runtime>(
      platform, sched::make_scheduler(scheduler), options);
  workflow::submit_workflow(*runtime, workflow::make_montage(10),
                            workflow::CodeletLibrary::standard());
  runtime->wait_all();
  return runtime;
}

TEST(ObsProperty, ChromeTraceSpanTimeEqualsRunStatsBusyTime) {
  const hw::Platform p = hw::make_workstation();
  for (const char* scheduler : kSchedulers) {
    const std::unique_ptr<core::Runtime> run = make_run(p, scheduler);
    core::Runtime& rt = *run;
    const util::Json doc = util::Json::parse(
        obs::chrome_trace_json(rt.tracer(), p, rt.recorder()));
    std::map<std::int64_t, double> span_seconds;
    for (const util::Json& event : doc.at("traceEvents").as_array()) {
      if (event.at("ph").as_string() != "X") {
        continue;
      }
      const auto tid =
          static_cast<std::int64_t>(event.at("tid").as_number());
      if (tid >= 1000) {
        continue;  // transfer tracks are not device busy time
      }
      span_seconds[tid] += event.at("dur").as_number() / 1e6;
    }
    for (hw::DeviceId d = 0; d < p.device_count(); ++d) {
      const double busy = rt.stats().devices[d].busy_seconds;
      // The trace round-trips timestamps through microseconds, so allow
      // only float noise proportional to the magnitude.
      EXPECT_NEAR(span_seconds[d], busy, 1e-9 * (1.0 + busy))
          << scheduler << " device " << p.device(d).name();
    }
  }
}

TEST(ObsProperty, MetricsSnapshotReconcilesWithRunStats) {
  const hw::Platform p = hw::make_workstation();
  for (const char* scheduler : kSchedulers) {
    const std::unique_ptr<core::Runtime> run = make_run(p, scheduler);
    core::Runtime& rt = *run;
    const obs::MetricsRegistry& m = rt.recorder()->metrics();
    const core::RunStats& stats = rt.stats();

    EXPECT_EQ(m.counter_sum("tasks_completed"),
              static_cast<double>(stats.tasks_completed))
        << scheduler;
    EXPECT_EQ(m.counter_sum("failed_attempts"),
              static_cast<double>(stats.failed_attempts))
        << scheduler;
    EXPECT_EQ(m.counter_sum("bytes_transferred"),
              static_cast<double>(stats.transfers.bytes_moved))
        << scheduler;
    // No fault injection in this run, so every task passes through the
    // scheduler exactly once.
    EXPECT_EQ(m.counter_sum("tasks_scheduled"),
              static_cast<double>(stats.tasks_completed))
        << scheduler;

    for (hw::DeviceId d = 0; d < p.device_count(); ++d) {
      const obs::Labels labels = {{"device", p.device(d).name()}};
      // Bitwise: the counter accumulated the identical doubles in the
      // identical order as DeviceRunStats::busy_seconds.
      EXPECT_EQ(m.counter_value("busy_seconds", labels),
                stats.devices[d].busy_seconds)
          << scheduler << " device " << p.device(d).name();
      EXPECT_EQ(m.counter_value("busy_energy_j", labels),
                stats.devices[d].busy_energy_j)
          << scheduler << " device " << p.device(d).name();
      EXPECT_EQ(m.counter_value("tasks_completed", labels),
                static_cast<double>(stats.devices[d].tasks_completed))
          << scheduler << " device " << p.device(d).name();
    }
  }
}

TEST(ObsProperty, LastDecisionWinnerIsTheDeviceTheTaskRanOn) {
  const hw::Platform p = hw::make_workstation();
  for (const char* scheduler : kSchedulers) {
    const std::unique_ptr<core::Runtime> run = make_run(p, scheduler);
    core::Runtime& rt = *run;

    // Last decision per task wins: pull-mode policies log both the
    // enqueue-time and the hand-off decision.
    std::map<std::uint64_t, hw::DeviceId> logged;
    for (const obs::SchedDecision& d : rt.recorder()->decisions()) {
      logged[d.task] = d.winner;
    }
    ASSERT_FALSE(logged.empty()) << scheduler;

    const check::AuditRecord audit = check::snapshot_audit(rt);
    std::size_t checked = 0;
    for (const check::TaskRecord& task : audit.run.tasks) {
      if (!task.completed) {
        continue;
      }
      const auto it = logged.find(task.id);
      ASSERT_NE(it, logged.end())
          << scheduler << " never logged a decision for task " << task.id;
      EXPECT_EQ(static_cast<std::uint32_t>(it->second), task.device)
          << scheduler << " decision log winner disagrees with the audit "
          << "for task " << task.id << " (" << task.name << ")";
      ++checked;
    }
    EXPECT_EQ(checked, rt.stats().tasks_completed) << scheduler;
  }
}

TEST(ObsProperty, EveryDecisionRecordsFiniteCandidatePredictions) {
  const hw::Platform p = hw::make_workstation();
  for (const char* scheduler : kSchedulers) {
    const std::unique_ptr<core::Runtime> run = make_run(p, scheduler);
    core::Runtime& rt = *run;
    for (const obs::SchedDecision& d : rt.recorder()->decisions()) {
      EXPECT_FALSE(d.candidates.empty()) << scheduler;
      EXPECT_FALSE(d.reason.empty()) << scheduler;
      bool winner_is_candidate = false;
      for (const obs::DecisionCandidate& c : d.candidates) {
        EXPECT_TRUE(std::isfinite(c.predicted_finish_s)) << scheduler;
        if (c.device == d.winner) {
          winner_is_candidate = true;
        }
      }
      EXPECT_TRUE(winner_is_candidate)
          << scheduler << " chose a device it never scored (task " << d.task
          << ")";
    }
  }
}

}  // namespace
}  // namespace hetflow
