#include "data/coherence.hpp"

#include <gtest/gtest.h>

namespace hetflow::data {
namespace {

constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

struct Fixture {
  Fixture() : platform(make_platform()) {}

  static hw::Platform make_platform() {
    hw::PlatformBuilder b("coh");
    const auto host = b.add_memory_node("host", 8 * kGiB);
    const auto v0 = b.add_memory_node("v0", 2 * kGiB);
    const auto v1 = b.add_memory_node("v1", 2 * kGiB);
    b.add_device("cpu", hw::DeviceType::Cpu, 10.0, host);
    b.add_link(host, v0, 10.0, 1e-6);
    b.add_link(host, v1, 10.0, 1e-6);
    b.add_link(v0, v1, 50.0, 1e-6);  // fast peer link
    return b.build();
  }

  hw::Platform platform;
  DataRegistry registry;
};

TEST(Coherence, HomeCopyStartsShared) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  EXPECT_EQ(dir.state(d, 0), ReplicaState::Shared);
  EXPECT_EQ(dir.state(d, 1), ReplicaState::Invalid);
  EXPECT_TRUE(dir.any_valid(d));
  EXPECT_EQ(dir.valid_nodes(d), (std::vector<hw::MemoryNodeId>{0}));
}

TEST(Coherence, SyncPicksUpLateRegistrations) {
  Fixture f;
  CoherenceDirectory dir(f.platform, f.registry);
  const DataId d = f.registry.register_data("late", 64, 2);
  dir.sync_with_registry();
  EXPECT_EQ(dir.state(d, 2), ReplicaState::Shared);
}

TEST(Coherence, MarkSharedAddsReplica) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  dir.mark_shared(d, 1);
  EXPECT_EQ(dir.state(d, 1), ReplicaState::Shared);
  EXPECT_EQ(dir.valid_nodes(d), (std::vector<hw::MemoryNodeId>{0, 1}));
}

TEST(Coherence, MarkModifiedInvalidatesOthers) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  dir.mark_shared(d, 1);
  dir.mark_shared(d, 2);
  const auto invalidated = dir.mark_modified(d, 1);
  EXPECT_EQ(invalidated, (std::vector<hw::MemoryNodeId>{0, 2}));
  EXPECT_EQ(dir.state(d, 0), ReplicaState::Invalid);
  EXPECT_EQ(dir.state(d, 1), ReplicaState::Modified);
  EXPECT_EQ(dir.state(d, 2), ReplicaState::Invalid);
}

TEST(Coherence, ModifiedDowngradesToShared) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  dir.mark_modified(d, 1);
  dir.mark_shared(d, 1);
  EXPECT_EQ(dir.state(d, 1), ReplicaState::Shared);
  EXPECT_TRUE(dir.any_valid(d));
}

TEST(Coherence, PickSourcePrefersFastestRoute) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 1000000000, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  // Valid on host (slow to v1) and v0 (fast peer to v1).
  dir.mark_shared(d, 1);
  EXPECT_EQ(dir.pick_source(d, 2), 1u);
}

TEST(Coherence, PickSourceWithSingleReplica) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  EXPECT_EQ(dir.pick_source(d, 2), 0u);
}

TEST(Coherence, PickSourceNoReplicaThrows) {
  Fixture f;
  const DataId d = f.registry.register_data("A", 100, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  dir.mark_invalid(d, 0);
  EXPECT_FALSE(dir.any_valid(d));
  EXPECT_THROW(dir.pick_source(d, 1), util::InternalError);
}

TEST(Coherence, ResidentTracking) {
  Fixture f;
  const DataId a = f.registry.register_data("A", 100, 0);
  const DataId b = f.registry.register_data("B", 50, 0);
  CoherenceDirectory dir(f.platform, f.registry);
  EXPECT_EQ(dir.resident(0), (std::vector<DataId>{a, b}));
  EXPECT_EQ(dir.resident_bytes(0), 150u);
  EXPECT_TRUE(dir.resident(1).empty());
  dir.mark_shared(a, 1);
  EXPECT_EQ(dir.resident_bytes(1), 100u);
  dir.mark_invalid(a, 0);
  EXPECT_EQ(dir.resident(0), (std::vector<DataId>{b}));
  EXPECT_EQ(dir.resident_bytes(0), 50u);
}

TEST(Coherence, ReplicaStateToString) {
  EXPECT_STREQ(to_string(ReplicaState::Invalid), "I");
  EXPECT_STREQ(to_string(ReplicaState::Shared), "S");
  EXPECT_STREQ(to_string(ReplicaState::Modified), "M");
}

TEST(Coherence, QueriesBeforeSyncThrow) {
  Fixture f;
  CoherenceDirectory dir(f.platform, f.registry);
  f.registry.register_data("new", 10, 0);
  EXPECT_THROW(dir.state(0, 0), util::InternalError);
}

}  // namespace
}  // namespace hetflow::data
