#include "data/transfer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hw/presets.hpp"
#include "util/error.hpp"

namespace hetflow::data {
namespace {

constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

hw::Platform simple_platform() {
  hw::PlatformBuilder b("xfer");
  const auto host = b.add_memory_node("host", 8 * kGiB);
  const auto vram = b.add_memory_node("vram", 2 * kGiB);
  b.add_device("cpu", hw::DeviceType::Cpu, 10.0, host);
  b.add_link(host, vram, 10.0, 1e-6);  // 10 GB/s
  return b.build();
}

TEST(TransferEngine, SameNodeIsFree) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  EXPECT_DOUBLE_EQ(engine.transfer(0, 0, 1000, 5.0), 5.0);
  EXPECT_EQ(engine.stats().transfer_count, 0u);
}

TEST(TransferEngine, SingleTransferTiming) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  // 1e9 bytes at 10 GB/s = 0.1 s + 1 us latency.
  const double done = engine.transfer(0, 1, 1000000000ull, 0.0);
  EXPECT_NEAR(done, 0.1 + 1e-6, 1e-12);
  EXPECT_EQ(engine.stats().transfer_count, 1u);
  EXPECT_EQ(engine.stats().bytes_moved, 1000000000ull);
}

TEST(TransferEngine, BackToBackTransfersQueueOnLink) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double first = engine.transfer(0, 1, 1000000000ull, 0.0);
  const double second = engine.transfer(0, 1, 1000000000ull, 0.0);
  // Second waits for the first to release the link.
  EXPECT_NEAR(second, first + 0.1 + 1e-6, 1e-9);
}

TEST(TransferEngine, OppositeDirectionsDoNotContend) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double forward = engine.transfer(0, 1, 1000000000ull, 0.0);
  const double backward = engine.transfer(1, 0, 1000000000ull, 0.0);
  // Two directed links: same completion time.
  EXPECT_NEAR(forward, backward, 1e-12);
}

TEST(TransferEngine, EstimateDoesNotCommit) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double est1 = engine.estimate(0, 1, 1000000000ull, 0.0);
  const double est2 = engine.estimate(0, 1, 1000000000ull, 0.0);
  EXPECT_DOUBLE_EQ(est1, est2);  // no occupancy consumed
  EXPECT_EQ(engine.stats().transfer_count, 0u);
  const double real = engine.transfer(0, 1, 1000000000ull, 0.0);
  EXPECT_DOUBLE_EQ(real, est1);
  // Now the estimate sees the busy link.
  EXPECT_GT(engine.estimate(0, 1, 1000000000ull, 0.0), est1);
}

TEST(TransferEngine, EarliestRespected) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double done = engine.transfer(0, 1, 1000ull, 42.0);
  EXPECT_GT(done, 42.0);
}

TEST(TransferEngine, LinkBytesAccounting) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  engine.transfer(0, 1, 500, 0.0);
  engine.transfer(0, 1, 700, 0.0);
  const auto link = p.link_between(0, 1);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(engine.link_bytes(*link), 1200u);
  const auto reverse = p.link_between(1, 0);
  EXPECT_EQ(engine.link_bytes(*reverse), 0u);
}

TEST(TransferEngine, MultiHopStoreAndForward) {
  hw::PlatformBuilder b("hop");
  const auto a = b.add_memory_node("a", kGiB);
  const auto m = b.add_memory_node("m", kGiB);
  const auto c = b.add_memory_node("c", kGiB);
  b.add_device("d", hw::DeviceType::Cpu, 1.0, a);
  b.add_link(a, m, 10.0, 1e-6);
  b.add_link(m, c, 10.0, 1e-6);
  const hw::Platform p = b.build();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double done = engine.transfer(a, c, 1000000000ull, 0.0);
  // Two sequential hops of 0.1 s each.
  EXPECT_NEAR(done, 0.2 + 2e-6, 1e-9);
  EXPECT_EQ(engine.stats().bytes_moved, 1000000000ull);
  EXPECT_EQ(engine.stats().bytes_link_hops, 2000000000ull);
}

TEST(TransferEngine, RoundingErrorBehindNowAtLargeSimTimeAccepted) {
  // Regression: at now ~ 1e7 s one double ulp is ~1.9e-9 s, so a caller
  // holding a start time that is one rounding error behind now must not
  // trip the "transfer cannot start in the past" guard (the old absolute
  // 1e-12 margin rejected it).
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  const double late = 1.0e7;
  double done = 0.0;
  q.schedule_at(late, [&] {
    const double one_ulp_behind = std::nextafter(late, 0.0);
    ASSERT_LT(one_ulp_behind, q.now());
    done = engine.transfer(0, 1, 1000ull, one_ulp_behind);
  });
  q.run_until(late + 1.0);
  EXPECT_GT(done, late);
}

TEST(TransferEngine, StartingClearlyInThePastStillThrows) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  bool threw = false;
  q.schedule_at(1.0e7, [&] {
    try {
      engine.transfer(0, 1, 1000ull, 9.0e6);  // 1e6 s in the past
    } catch (const util::Error&) {
      threw = true;
    }
  });
  q.run_until(1.1e7);
  EXPECT_TRUE(threw);
}

TEST(TransferEngine, BusySecondsAccumulate) {
  const hw::Platform p = simple_platform();
  sim::EventQueue q;
  TransferEngine engine(p, q);
  engine.transfer(0, 1, 1000000000ull, 0.0);
  EXPECT_NEAR(engine.stats().busy_seconds, 0.1 + 1e-6, 1e-9);
}

}  // namespace
}  // namespace hetflow::data
