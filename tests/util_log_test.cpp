#include "util/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hetflow::util {
namespace {

/// RAII guard restoring the global logger state after each test.
struct LogGuard {
  LogGuard() = default;
  ~LogGuard() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::Warn);
  }
};

TEST(Log, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Debug), "debug");
  EXPECT_STREQ(to_string(LogLevel::Info), "info");
  EXPECT_STREQ(to_string(LogLevel::Warn), "warn");
  EXPECT_STREQ(to_string(LogLevel::Error), "error");
  EXPECT_STREQ(to_string(LogLevel::Off), "off");
}

TEST(Log, DefaultLevelIsWarn) {
  const LogGuard guard;
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(Log, SinkReceivesEnabledMessages) {
  const LogGuard guard;
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& message) {
    captured.push_back({level, message});
  });
  set_log_level(LogLevel::Info);
  log_message(LogLevel::Info, "hello");
  log_message(LogLevel::Error, "bad");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "hello");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
}

TEST(Log, MessagesBelowLevelDropped) {
  const LogGuard guard;
  int count = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++count; });
  set_log_level(LogLevel::Error);
  log_message(LogLevel::Debug, "x");
  log_message(LogLevel::Info, "x");
  log_message(LogLevel::Warn, "x");
  EXPECT_EQ(count, 0);
  log_message(LogLevel::Error, "x");
  EXPECT_EQ(count, 1);
}

TEST(Log, OffSilencesEverything) {
  const LogGuard guard;
  int count = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++count; });
  set_log_level(LogLevel::Off);
  log_message(LogLevel::Error, "x");
  EXPECT_EQ(count, 0);
}

TEST(Log, StreamMacroFormats) {
  const LogGuard guard;
  std::string captured;
  set_log_sink([&](LogLevel, const std::string& message) {
    captured = message;
  });
  set_log_level(LogLevel::Debug);
  HETFLOW_INFO << "value=" << 42 << " pi=" << 3.5;
  EXPECT_EQ(captured, "value=42 pi=3.5");
}

TEST(Log, StreamMacroShortCircuitsWhenDisabled) {
  const LogGuard guard;
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  HETFLOW_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);  // operand never evaluated
  HETFLOW_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, NullSinkRestoresDefault) {
  const LogGuard guard;
  set_log_sink([](LogLevel, const std::string&) {});
  set_log_sink(nullptr);
  // No crash writing through the default stderr sink.
  log_message(LogLevel::Error, "to stderr");
  SUCCEED();
}

}  // namespace
}  // namespace hetflow::util
