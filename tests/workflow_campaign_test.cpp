#include "workflow/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hw/presets.hpp"

namespace hetflow::workflow {
namespace {

TEST(ResponseSurface, BraninKnownValues) {
  const ResponseSurface surface(ResponseSurface::Kind::Branin);
  // Global minimum at (pi, 2.275) in native coords ->
  // x = (pi + 5) / 15, y = 2.275 / 15.
  const double x = (3.14159265 + 5.0) / 15.0;
  const double y = 2.275 / 15.0;
  EXPECT_NEAR(surface.value(x, y), 0.397887, 1e-4);
  EXPECT_NEAR(surface.true_minimum(), 0.397887, 1e-6);
  EXPECT_STREQ(surface.name(), "branin");
}

TEST(ResponseSurface, QuadraticMinimumAtCenter) {
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic);
  EXPECT_DOUBLE_EQ(surface.value(0.7, 0.3), 0.0);
  EXPECT_GT(surface.value(0.0, 0.0), 0.0);
  EXPECT_GT(surface.value(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(surface.true_minimum(), 0.0);
}

TEST(ResponseSurface, RosenbrockValleyProperty) {
  const ResponseSurface surface(ResponseSurface::Kind::Rosenbrock);
  // Native minimum (1,1) -> normalized ((1+2)/4, (1+1)/3).
  EXPECT_NEAR(surface.value(0.75, 2.0 / 3.0), 0.0, 1e-9);
  EXPECT_GT(surface.value(0.1, 0.9), 1.0);
}

TEST(ResponseSurface, NoiseIsZeroMeanish) {
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic, 0.5);
  util::Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += surface.observe(0.5, 0.5, rng) - surface.value(0.5, 0.5);
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
}

TEST(ResponseSurface, NegativeNoiseRejected) {
  EXPECT_THROW(ResponseSurface(ResponseSurface::Kind::Branin, -1.0),
               util::InternalError);
}

TEST(Campaign, ConfigValidation) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic);
  CampaignConfig config;
  config.batch_size = 0;
  EXPECT_THROW(run_campaign(p, surface, SearchStrategy::Grid, config),
               util::InternalError);
  config.batch_size = 64;
  config.max_evaluations = 8;
  EXPECT_THROW(run_campaign(p, surface, SearchStrategy::Grid, config),
               util::InternalError);
}

TEST(Campaign, StopsAtBudget) {
  const hw::Platform p = hw::make_workstation();
  // Impossible target: campaign must stop exactly at max_evaluations.
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic);
  CampaignConfig config;
  config.max_evaluations = 32;
  config.batch_size = 8;
  config.target_excess = -1.0;  // unreachable
  const CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Random, config);
  EXPECT_EQ(result.evaluations, 32u);
  EXPECT_EQ(result.rounds, 4u);
  EXPECT_FALSE(result.reached_target);
  EXPECT_EQ(result.best_after_round.size(), 4u);
}

TEST(Campaign, BestTraceIsMonotone) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.1);
  CampaignConfig config;
  config.max_evaluations = 64;
  config.target_excess = -1.0;
  const CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Random, config);
  for (std::size_t i = 1; i < result.best_after_round.size(); ++i) {
    EXPECT_LE(result.best_after_round[i], result.best_after_round[i - 1]);
  }
}

TEST(Campaign, SimulatedTimeAdvancesWithWork) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic);
  CampaignConfig config;
  config.max_evaluations = 16;
  config.target_excess = -1.0;
  const CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Grid, config);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_GT(result.core_seconds, 0.0);
}

TEST(Campaign, SurrogateFindsQuadraticMinimumQuickly) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic, 0.01);
  CampaignConfig config;
  config.max_evaluations = 256;
  config.target_excess = 0.05;
  const CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Surrogate, config);
  EXPECT_TRUE(result.reached_target);
  EXPECT_NEAR(result.best_x, 0.7, 0.15);
  EXPECT_NEAR(result.best_y, 0.3, 0.15);
}

TEST(Campaign, SurrogateBeatsGridAndRandomOnBraninOnAverage) {
  // Single seeds are noisy (random search can get lucky), so compare the
  // mean evaluations-to-target over several seeds.
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.05);
  CampaignConfig config;
  config.max_evaluations = 256;
  config.target_excess = 0.1;
  double mean_evals[3] = {0.0, 0.0, 0.0};
  const std::uint64_t seeds[] = {1, 7, 13, 29, 71};
  int idx = 0;
  for (SearchStrategy strategy :
       {SearchStrategy::Surrogate, SearchStrategy::Grid,
        SearchStrategy::Random}) {
    for (std::uint64_t seed : seeds) {
      config.seed = seed;
      const CampaignResult result =
          run_campaign(p, surface, strategy, config);
      mean_evals[idx] += static_cast<double>(
          result.reached_target ? result.evaluations
                                : config.max_evaluations * 2);
    }
    mean_evals[idx] /= static_cast<double>(std::size(seeds));
    ++idx;
  }
  EXPECT_LT(mean_evals[0], mean_evals[1]);
  EXPECT_LT(mean_evals[0], mean_evals[2]);
}

TEST(Campaign, DeterministicGivenSeed) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.1);
  CampaignConfig config;
  config.max_evaluations = 64;
  config.seed = 5;
  const CampaignResult a =
      run_campaign(p, surface, SearchStrategy::Surrogate, config);
  const CampaignResult b =
      run_campaign(p, surface, SearchStrategy::Surrogate, config);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Campaign, StrategyNames) {
  EXPECT_STREQ(to_string(SearchStrategy::Grid), "grid");
  EXPECT_STREQ(to_string(SearchStrategy::Random), "random");
  EXPECT_STREQ(to_string(SearchStrategy::Surrogate), "surrogate");
  EXPECT_EQ(strategy_from_name("grid"), SearchStrategy::Grid);
  EXPECT_EQ(strategy_from_name("random"), SearchStrategy::Random);
  EXPECT_EQ(strategy_from_name("surrogate"), SearchStrategy::Surrogate);
  EXPECT_THROW(strategy_from_name("simulated-annealing"), util::Error);
  EXPECT_EQ(ResponseSurface::kind_from_name("branin"),
            ResponseSurface::Kind::Branin);
  EXPECT_EQ(ResponseSurface::kind_from_name("rosenbrock"),
            ResponseSurface::Kind::Rosenbrock);
  EXPECT_EQ(ResponseSurface::kind_from_name("quadratic"),
            ResponseSurface::Kind::Quadratic);
  EXPECT_THROW(ResponseSurface::kind_from_name("ackley"), util::Error);
}

// --- checkpoint / restart ---------------------------------------------------

void expect_identical_results(const CampaignResult& a,
                              const CampaignResult& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.reached_target, b.reached_target);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_DOUBLE_EQ(a.best_x, b.best_x);
  EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.core_seconds, b.core_seconds);
  ASSERT_EQ(a.best_after_round.size(), b.best_after_round.size());
  for (std::size_t i = 0; i < a.best_after_round.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.best_after_round[i], b.best_after_round[i]);
  }
}

std::string temp_checkpoint_path(const char* tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "hetflow_" + info->name() + "_" + tag +
         ".json";
}

TEST(CampaignCheckpoint, MaxRoundsSlicesTheCampaign) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.1);
  CampaignConfig config;
  config.max_evaluations = 64;
  config.target_excess = -1.0;
  config.max_rounds = 3;
  const CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Random, config);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_EQ(result.evaluations, 24u);
  EXPECT_FALSE(result.reached_target);
}

// The acceptance property: a campaign checkpointed and killed at EVERY
// batch boundary, then resumed, must finish byte-identical to the
// uninterrupted run — same incumbent, same trajectory, same simulated
// clock (the runtime state is replayed, not approximated).
TEST(CampaignCheckpoint, KillAndResumeAtEveryBatchBoundaryIsLossless) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.1);
  CampaignConfig config;
  config.max_evaluations = 48;
  config.batch_size = 8;
  config.target_excess = -1.0;  // run the full budget
  config.seed = 11;

  for (SearchStrategy strategy :
       {SearchStrategy::Grid, SearchStrategy::Random,
        SearchStrategy::Surrogate}) {
    const CampaignResult uninterrupted =
        run_campaign(p, surface, strategy, config);
    ASSERT_GE(uninterrupted.rounds, 2u);
    for (std::size_t kill_after = 1; kill_after < uninterrupted.rounds;
         ++kill_after) {
      const std::string path = temp_checkpoint_path(to_string(strategy));
      CampaignConfig sliced = config;
      sliced.checkpoint_path = path;
      sliced.max_rounds = kill_after;
      const CampaignResult partial =
          run_campaign(p, surface, strategy, sliced);
      ASSERT_EQ(partial.rounds, kill_after);
      const CampaignResult resumed = resume_campaign(p, path);
      expect_identical_results(uninterrupted, resumed);
      std::remove(path.c_str());
    }
  }
}

TEST(CampaignCheckpoint, ResumeAfterTargetReachedIsANoOp) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Quadratic, 0.01);
  CampaignConfig config;
  config.max_evaluations = 256;
  config.target_excess = 0.05;
  config.checkpoint_path = temp_checkpoint_path("done");
  const CampaignResult done =
      run_campaign(p, surface, SearchStrategy::Surrogate, config);
  ASSERT_TRUE(done.reached_target);
  // The final checkpoint already records a finished campaign: resuming
  // must replay to the same result without running further rounds.
  const CampaignResult resumed =
      resume_campaign(p, config.checkpoint_path);
  expect_identical_results(done, resumed);
  std::remove(config.checkpoint_path.c_str());
}

TEST(CampaignCheckpoint, ResumeCanContinueInSlices) {
  const hw::Platform p = hw::make_workstation();
  const ResponseSurface surface(ResponseSurface::Kind::Branin, 0.1);
  CampaignConfig config;
  config.max_evaluations = 40;
  config.batch_size = 8;
  config.target_excess = -1.0;
  const CampaignResult uninterrupted =
      run_campaign(p, surface, SearchStrategy::Surrogate, config);
  // Run one round at a time: kill + resume between every single round.
  const std::string path = temp_checkpoint_path("slices");
  CampaignConfig sliced = config;
  sliced.checkpoint_path = path;
  sliced.max_rounds = 1;
  CampaignResult result =
      run_campaign(p, surface, SearchStrategy::Surrogate, sliced);
  while (result.rounds < uninterrupted.rounds) {
    result = resume_campaign(p, path, result.rounds + 1);
  }
  expect_identical_results(uninterrupted, result);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, MissingFileThrows) {
  const hw::Platform p = hw::make_workstation();
  EXPECT_THROW(resume_campaign(p, "/nonexistent/dir/ckpt.json"),
               util::Error);
}

TEST(CampaignCheckpoint, CorruptFileThrows) {
  const hw::Platform p = hw::make_workstation();
  const std::string path = temp_checkpoint_path("corrupt");
  {
    std::ofstream out(path);
    out << "{\"version\": 1, \"strategy\": \"grid\"";  // truncated
  }
  EXPECT_THROW(resume_campaign(p, path), util::Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetflow::workflow
