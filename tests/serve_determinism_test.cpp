// Serve determinism properties: the per-tenant latency table is a pure
// function of (config, script) — byte-identical across host parallelism
// and across kill-and-resume through the checkpoint machinery.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "hw/presets.hpp"
#include "serve/engine.hpp"

namespace hetflow::serve {
namespace {

ServeConfig test_config() {
  ServeConfig config;
  config.audit = true;
  config.batch_limit = 8;
  config.admission.max_pending = 24;
  config.admission.defer_cap = 8;
  config.admission.policy = BackpressurePolicy::Defer;
  return config;
}

/// A script with enough texture to catch ordering bugs: three tenants
/// across two priority tiers, mixed shapes, interleaved batches, enough
/// volume to trip deferral.
ServeScript mixed_script() {
  return parse_script(
      "{\"op\":\"tenant\",\"name\":\"a\",\"weight\":2}\n"
      "{\"op\":\"tenant\",\"name\":\"b\"}\n"
      "{\"op\":\"tenant\",\"name\":\"c\",\"priority\":1}\n"
      "{\"op\":\"submit\",\"tenant\":0,\"tasks\":4,\"count\":8}\n"
      "{\"op\":\"submit\",\"tenant\":1,\"shape\":\"fanout\",\"tasks\":6,"
      "\"count\":8}\n"
      "{\"op\":\"submit\",\"tenant\":2,\"shape\":\"diamond\",\"tasks\":5,"
      "\"count\":8}\n"
      "{\"op\":\"batch\"}\n"
      "{\"op\":\"submit\",\"tenant\":0,\"tasks\":3,\"count\":6}\n"
      "{\"op\":\"submit\",\"tenant\":2,\"tasks\":2,\"count\":6}\n"
      "{\"op\":\"batch\"}\n"
      "{\"op\":\"drain\"}\n");
}

std::string run_once(const ServeScript& script) {
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, test_config());
  run_script(engine, script);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
  return engine.latency_csv();
}

std::string temp_path(const char* tag) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "hetflow_serve_" + info->name() + "_" +
         tag + ".json";
}

TEST(ServeDeterminism, LatencyCsvIsByteIdenticalAcrossJobCounts) {
  const ServeScript script = mixed_script();
  // Replica determinism: each replica owns engine + platform outright, so
  // --jobs 1 and --jobs 8 must produce the same bytes in every replica.
  const auto run_replicas = [&](std::size_t jobs) {
    return exec::parallel_map<std::string>(
        8, jobs, [&](std::size_t) { return run_once(script); });
  };
  const std::vector<std::string> serial = run_replicas(1);
  const std::vector<std::string> parallel = run_replicas(8);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_NE(serial[0].find("p99_latency_s"), std::string::npos);
  EXPECT_NE(serial[0].find(",a,"), std::string::npos);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], serial[0]) << "replica " << i;
    EXPECT_EQ(parallel[i], serial[0]) << "replica " << i;
  }
}

TEST(ServeDeterminism, SameSeedSameBytesDifferentConfigDifferentClock) {
  const ServeScript script = mixed_script();
  EXPECT_EQ(run_once(script), run_once(script));
  ServeConfig other = test_config();
  other.seed = 7;
  other.batch_limit = 3;  // different batching => different latencies
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, other);
  run_script(engine, script);
  EXPECT_NE(engine.latency_csv(), run_once(script));
}

TEST(ServeDeterminism, KillAndResumeReproducesTheUninterruptedBytes) {
  const ServeScript script = mixed_script();
  const std::string uninterrupted = run_once(script);

  // Run with a checkpoint after every batch, killed after the first
  // batch op; a fresh engine resumes from the file and finishes.
  const std::string path = temp_path("ckpt");
  const hw::Platform platform = hw::make_workstation();
  ServeEngine first(platform, test_config());
  const ScriptRunResult partial = run_script(first, script, 0, path, 1);
  EXPECT_TRUE(partial.stopped_early);
  EXPECT_GT(first.total_pending(), 0u);  // work genuinely in flight

  const hw::Platform platform2 = hw::make_workstation();
  ServeEngine resumed(platform2, test_config());
  const std::size_t start_op = ServeEngine::load_checkpoint(path, resumed);
  EXPECT_GT(start_op, 0u);
  EXPECT_EQ(resumed.batches_run(), 1u);
  EXPECT_EQ(resumed.total_pending(), first.total_pending());
  run_script(resumed, script, start_op);
  EXPECT_EQ(resumed.latency_csv(), uninterrupted);
  EXPECT_TRUE(resumed.audit_report().passed())
      << resumed.audit_report().summary();
  std::remove(path.c_str());
}

TEST(ServeDeterminism, MidDrainCheckpointResumesIdempotently) {
  // Killing inside the drain loop stores the drain op itself; resuming
  // re-enters it over the emptier queues and must converge on the same
  // final table.
  const ServeScript script = mixed_script();
  const std::string uninterrupted = run_once(script);
  const std::string path = temp_path("mid_drain");
  const hw::Platform platform = hw::make_workstation();
  ServeEngine first(platform, test_config());
  // 3 batch ops: the 2 explicit ones plus the first inside the drain —
  // the kill lands mid-drain with work still pending.
  const ScriptRunResult partial = run_script(first, script, 0, path, 3);
  ASSERT_TRUE(partial.stopped_early);
  ASSERT_GT(first.total_pending(), 0u);

  const hw::Platform platform2 = hw::make_workstation();
  ServeEngine resumed(platform2, test_config());
  const std::size_t start_op = ServeEngine::load_checkpoint(path, resumed);
  run_script(resumed, script, start_op);
  EXPECT_EQ(resumed.latency_csv(), uninterrupted);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetflow::serve
