// Serve policy units: admission decisions, the fair-share release rule
// (heap implementation vs a reference linear scan), and the JSONL
// protocol parser.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/admission.hpp"
#include "serve/fair_share.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace hetflow::serve {
namespace {

TEST(Admission, TenantCapRejectsBeforeGlobalPolicy) {
  AdmissionController::Limits limits;
  limits.max_pending = 100;
  limits.policy = BackpressurePolicy::Defer;
  const AdmissionController admission(limits);
  // Tenant already at its cap: rejected even though the system has room.
  EXPECT_EQ(admission.decide(4, 4, 10, 0), AdmissionDecision::Rejected);
  EXPECT_EQ(admission.decide(3, 4, 10, 0), AdmissionDecision::Admitted);
}

TEST(Admission, GlobalCapDefersThenRejectsWhenOverflowFills) {
  AdmissionController::Limits limits;
  limits.max_pending = 10;
  limits.defer_cap = 2;
  limits.policy = BackpressurePolicy::Defer;
  const AdmissionController admission(limits);
  EXPECT_EQ(admission.decide(0, 4, 9, 0), AdmissionDecision::Admitted);
  EXPECT_EQ(admission.decide(0, 4, 10, 0), AdmissionDecision::Deferred);
  EXPECT_EQ(admission.decide(0, 4, 10, 1), AdmissionDecision::Deferred);
  EXPECT_EQ(admission.decide(0, 4, 10, 2), AdmissionDecision::Rejected);
}

TEST(Admission, RejectPolicyNeverDefers) {
  AdmissionController::Limits limits;
  limits.max_pending = 10;
  limits.defer_cap = 1000;
  limits.policy = BackpressurePolicy::Reject;
  const AdmissionController admission(limits);
  EXPECT_EQ(admission.decide(0, 4, 10, 0), AdmissionDecision::Rejected);
}

TenantSpec spec_of(double weight, int priority, std::size_t cap = 100,
                   std::size_t in_flight = 100) {
  TenantSpec spec;
  spec.weight = weight;
  spec.priority = priority;
  spec.backlog_cap = cap;
  spec.max_in_flight = in_flight;
  return spec;
}

TEST(FairShare, PriorityTiersReleaseStrictlyFirst) {
  FairShareQueue queue;
  const TenantId lo = queue.add_tenant(spec_of(1.0, 0));
  const TenantId hi = queue.add_tenant(spec_of(1.0, 5));
  queue.push(lo, 0);
  queue.push(hi, 1);
  queue.push(hi, 2);
  queue.begin_batch();
  EXPECT_EQ(queue.next_tenant(), hi);
  EXPECT_EQ(queue.pop(hi), 1u);
  EXPECT_EQ(queue.next_tenant(), hi);
  EXPECT_EQ(queue.pop(hi), 2u);
  EXPECT_EQ(queue.next_tenant(), lo);
}

TEST(FairShare, WeightedDeficitPicksLeastNormalizedConsumption) {
  FairShareQueue queue;
  const TenantId heavy = queue.add_tenant(spec_of(2.0, 0));
  const TenantId light = queue.add_tenant(spec_of(1.0, 0));
  queue.note_consumed(heavy, 4.0);  // normalized 2.0
  queue.note_consumed(light, 3.0);  // normalized 3.0
  queue.push(heavy, 0);
  queue.push(light, 1);
  queue.begin_batch();
  EXPECT_EQ(queue.next_tenant(), heavy);
  EXPECT_DOUBLE_EQ(queue.normalized_consumption(heavy), 2.0);
  EXPECT_DOUBLE_EQ(queue.normalized_consumption(light), 3.0);
}

TEST(FairShare, IdBreaksExactTies) {
  FairShareQueue queue;
  const TenantId a = queue.add_tenant(spec_of(1.0, 0));
  const TenantId b = queue.add_tenant(spec_of(1.0, 0));
  queue.push(b, 0);
  queue.push(a, 1);
  queue.begin_batch();
  EXPECT_EQ(queue.next_tenant(), a);
}

TEST(FairShare, MaxInFlightCapsPerBatchAndResetsNextBatch) {
  FairShareQueue queue;
  const TenantId t = queue.add_tenant(spec_of(1.0, 0, 100, 2));
  queue.push(t, 0);
  queue.push(t, 1);
  queue.push(t, 2);
  queue.begin_batch();
  EXPECT_EQ(queue.pop(queue.next_tenant()), 0u);
  EXPECT_EQ(queue.pop(queue.next_tenant()), 1u);
  EXPECT_EQ(queue.next_tenant(), kInvalidTenant);  // capped for this batch
  EXPECT_FALSE(queue.any_eligible());
  EXPECT_EQ(queue.total_backlog(), 1u);
  queue.begin_batch();
  EXPECT_EQ(queue.pop(queue.next_tenant()), 2u);
  EXPECT_EQ(queue.total_backlog(), 0u);
}

/// Reference implementation of the release rule: linear scan for the
/// lexicographic argmin. The heap in FairShareQueue must agree with this
/// on every query of a randomized push/pop/consume sequence.
TenantId linear_argmin(const FairShareQueue& queue) {
  TenantId best = kInvalidTenant;
  for (TenantId t = 0; t < queue.tenant_count(); ++t) {
    if (queue.backlog_size(t) == 0 ||
        queue.released_in_batch(t) >= queue.spec(t).max_in_flight) {
      continue;
    }
    if (best == kInvalidTenant ||
        queue.spec(t).priority > queue.spec(best).priority ||
        (queue.spec(t).priority == queue.spec(best).priority &&
         queue.normalized_consumption(t) <
             queue.normalized_consumption(best))) {
      best = t;
    }
  }
  return best;
}

TEST(FairShare, HeapAgreesWithLinearReferenceUnderRandomLoad) {
  util::Rng rng(2026);
  FairShareQueue queue;
  for (int i = 0; i < 17; ++i) {
    queue.add_tenant(spec_of(1.0 + (i % 4), i % 3, 8, 1 + (i % 3)));
  }
  JobRef next_job = 0;
  for (int batch = 0; batch < 50; ++batch) {
    for (int i = 0; i < 30; ++i) {
      const auto t = static_cast<TenantId>(rng.uniform_int(0, 16));
      if (queue.backlog_size(t) < queue.spec(t).backlog_cap) {
        queue.push(t, next_job++);
      }
    }
    queue.begin_batch();
    std::size_t released = 0;
    while (released < 20) {
      const TenantId expected = linear_argmin(queue);
      ASSERT_EQ(queue.next_tenant(), expected) << "batch " << batch;
      if (expected == kInvalidTenant) {
        break;
      }
      queue.pop(expected);
      ++released;
      if (rng.uniform_int(0, 3) == 0) {
        queue.note_consumed(expected, rng.uniform(0.1, 2.0));
      }
    }
  }
}

TEST(Protocol, ParsesScriptAndAssignsDefaults) {
  const ServeScript script = parse_script(
      "# comment\n"
      "{\"op\":\"tenant\",\"name\":\"lab\",\"weight\":2.5,\"priority\":1}\n"
      "\n"
      "{\"op\":\"submit\",\"tenant\":0,\"shape\":\"fanout\",\"tasks\":8,"
      "\"count\":3}\n"
      "{\"op\":\"batch\"}\n"
      "{\"op\":\"drain\"}\n");
  ASSERT_EQ(script.size(), 4u);
  EXPECT_EQ(script[0].kind, ScriptOp::Kind::Tenant);
  EXPECT_EQ(script[0].tenant.name, "lab");
  EXPECT_DOUBLE_EQ(script[0].tenant.weight, 2.5);
  EXPECT_EQ(script[0].tenant.priority, 1);
  EXPECT_EQ(script[1].kind, ScriptOp::Kind::Submit);
  EXPECT_EQ(script[1].target, 0u);
  EXPECT_EQ(script[1].job.shape, JobShape::Fanout);
  EXPECT_EQ(script[1].job.tasks, 8u);
  EXPECT_EQ(script[1].count, 3u);
  EXPECT_EQ(script[2].kind, ScriptOp::Kind::Batch);
  EXPECT_EQ(script[3].kind, ScriptOp::Kind::Drain);
}

TEST(Protocol, MalformedLineReportsItsNumber) {
  try {
    parse_script("{\"op\":\"batch\"}\n{\"op\":\"warp\"}\n");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(Protocol, OpsRoundTripThroughJson) {
  const ServeScript script = parse_script(
      "{\"op\":\"tenant\",\"name\":\"a\",\"weight\":2}\n"
      "{\"op\":\"submit\",\"tenant\":0,\"shape\":\"diamond\",\"tasks\":5,"
      "\"flops\":2e9,\"bytes\":4096,\"count\":2}\n"
      "{\"op\":\"drain\"}\n");
  std::string text;
  for (const ScriptOp& op : script) {
    text += op_to_json(op).dump();
    text += '\n';
  }
  const ServeScript reparsed = parse_script(text);
  ASSERT_EQ(reparsed.size(), script.size());
  EXPECT_EQ(reparsed[1].job.shape, JobShape::Diamond);
  EXPECT_EQ(reparsed[1].job.tasks, 5u);
  EXPECT_DOUBLE_EQ(reparsed[1].job.flops, 2e9);
  EXPECT_EQ(reparsed[1].job.bytes, 4096u);
  EXPECT_EQ(reparsed[1].count, 2u);
}

}  // namespace
}  // namespace hetflow::serve
