#include "hw/platform.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hetflow::hw {
namespace {

constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

Platform two_node_platform() {
  PlatformBuilder b("test");
  const MemoryNodeId host = b.add_memory_node("host", 8 * kGiB);
  const MemoryNodeId vram = b.add_memory_node("vram", 2 * kGiB);
  b.add_device("cpu0", DeviceType::Cpu, 10.0, host);
  b.add_device("gpu0", DeviceType::Gpu, 100.0, vram, 10e-6);
  b.add_link(host, vram, 10.0, 1e-6);
  return b.build();
}

TEST(PlatformBuilder, BuildValidPlatform) {
  const Platform p = two_node_platform();
  EXPECT_EQ(p.device_count(), 2u);
  EXPECT_EQ(p.memory_node_count(), 2u);
  EXPECT_EQ(p.links().size(), 2u);  // bidirectional -> two directed links
  EXPECT_TRUE(p.fully_connected());
  EXPECT_DOUBLE_EQ(p.total_gflops(), 110.0);
}

TEST(PlatformBuilder, RequiresDeviceAndNode) {
  {
    PlatformBuilder b("empty");
    EXPECT_THROW(b.build(), InvalidArgument);
  }
  {
    PlatformBuilder b("nodes-only");
    b.add_memory_node("m", kGiB);
    EXPECT_THROW(b.build(), InvalidArgument);
  }
}

TEST(PlatformBuilder, RejectsBadReferences) {
  PlatformBuilder b("bad");
  b.add_memory_node("m", kGiB);
  EXPECT_THROW(b.add_device("d", DeviceType::Cpu, 1.0, 7), InternalError);
  EXPECT_THROW(b.add_link(0, 9, 1.0, 0.0), InternalError);
}

TEST(PlatformBuilder, RejectsDuplicateLink) {
  PlatformBuilder b("dup");
  b.add_memory_node("a", kGiB);
  b.add_memory_node("b", kGiB);
  b.add_device("d", DeviceType::Cpu, 1.0, 0);
  b.add_link(0, 1, 1.0, 0.0);
  EXPECT_THROW(b.add_link(0, 1, 2.0, 0.0), InternalError);
}

TEST(PlatformBuilder, WithDvfsNeedsDevice) {
  PlatformBuilder b("dvfs");
  b.add_memory_node("m", kGiB);
  EXPECT_THROW(b.with_dvfs({{1.0, 5.0, 1.0}}, 0), InternalError);
}

TEST(PlatformBuilder, CannotBuildTwice) {
  PlatformBuilder b("once");
  b.add_memory_node("m", kGiB);
  b.add_device("d", DeviceType::Cpu, 1.0, 0);
  b.build();
  EXPECT_THROW(b.build(), InternalError);
}

TEST(Platform, LinkBetween) {
  const Platform p = two_node_platform();
  EXPECT_TRUE(p.link_between(0, 1).has_value());
  EXPECT_TRUE(p.link_between(1, 0).has_value());
  EXPECT_FALSE(p.link_between(0, 0).has_value());
}

TEST(Platform, RouteDirect) {
  const Platform p = two_node_platform();
  EXPECT_TRUE(p.route(0, 0).empty());
  const auto& route = p.route(0, 1);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(p.link(route[0]).src(), 0u);
  EXPECT_EQ(p.link(route[0]).dst(), 1u);
}

TEST(Platform, MultiHopRouting) {
  // a -- b -- c with no direct a-c link: route a->c goes through b.
  PlatformBuilder b("3node");
  const MemoryNodeId na = b.add_memory_node("a", kGiB);
  const MemoryNodeId nb = b.add_memory_node("b", kGiB);
  const MemoryNodeId nc = b.add_memory_node("c", kGiB);
  b.add_device("d", DeviceType::Cpu, 1.0, na);
  b.add_link(na, nb, 10.0, 1e-6);
  b.add_link(nb, nc, 10.0, 1e-6);
  const Platform p = b.build();
  const auto& route = p.route(na, nc);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(p.link(route[0]).src(), na);
  EXPECT_EQ(p.link(route[0]).dst(), nb);
  EXPECT_EQ(p.link(route[1]).src(), nb);
  EXPECT_EQ(p.link(route[1]).dst(), nc);
  EXPECT_TRUE(p.fully_connected());
}

TEST(Platform, RoutePrefersLowerLatency) {
  // Two routes a->c: direct high-latency vs 2-hop low-latency.
  PlatformBuilder b("routed");
  const MemoryNodeId na = b.add_memory_node("a", kGiB);
  const MemoryNodeId nb = b.add_memory_node("b", kGiB);
  const MemoryNodeId nc = b.add_memory_node("c", kGiB);
  b.add_device("d", DeviceType::Cpu, 1.0, na);
  b.add_link(na, nc, 10.0, 100e-6);  // slow direct
  b.add_link(na, nb, 10.0, 1e-6);
  b.add_link(nb, nc, 10.0, 1e-6);
  const Platform p = b.build();
  EXPECT_EQ(p.route(na, nc).size(), 2u);
}

TEST(Platform, DisconnectedNodesDetected) {
  PlatformBuilder b("split");
  b.add_memory_node("a", kGiB);
  b.add_memory_node("island", kGiB);
  b.add_device("d", DeviceType::Cpu, 1.0, 0);
  const Platform p = b.build();
  EXPECT_FALSE(p.fully_connected());
  EXPECT_THROW(p.route(0, 1), InvalidArgument);
}

TEST(Platform, TransferTime) {
  const Platform p = two_node_platform();
  // 10 GB/s, 1 us latency, 1e9 bytes -> 0.1 s + 1e-6.
  EXPECT_NEAR(p.transfer_time_s(0, 1, 1000000000ull), 0.100001, 1e-9);
  EXPECT_DOUBLE_EQ(p.transfer_time_s(0, 0, 12345), 0.0);
}

TEST(Platform, DeviceQueriesByTypeAndNode) {
  const Platform p = two_node_platform();
  EXPECT_EQ(p.devices_of_type(DeviceType::Cpu),
            (std::vector<DeviceId>{0}));
  EXPECT_EQ(p.devices_of_type(DeviceType::Gpu),
            (std::vector<DeviceId>{1}));
  EXPECT_TRUE(p.devices_of_type(DeviceType::Fpga).empty());
  EXPECT_EQ(p.devices_on_node(0), (std::vector<DeviceId>{0}));
  EXPECT_EQ(p.devices_on_node(1), (std::vector<DeviceId>{1}));
}

TEST(Platform, DescribeMentionsComponents) {
  const Platform p = two_node_platform();
  const std::string text = p.describe();
  EXPECT_NE(text.find("cpu0"), std::string::npos);
  EXPECT_NE(text.find("gpu0"), std::string::npos);
  EXPECT_NE(text.find("host"), std::string::npos);
  EXPECT_NE(text.find("2 devices"), std::string::npos);
}

TEST(Platform, OutOfRangeAccessorsThrow) {
  const Platform p = two_node_platform();
  EXPECT_THROW(p.device(9), InternalError);
  EXPECT_THROW(p.memory_node(9), InternalError);
  EXPECT_THROW(p.link(9), InternalError);
  EXPECT_THROW(p.route(0, 9), InternalError);
}

TEST(Link, TransferTimeFormula) {
  const Link l(0, 0, 1, 2.0, 5e-6);  // 2 GB/s
  EXPECT_NEAR(l.transfer_time_s(2000000000ull), 1.0 + 5e-6, 1e-12);
  EXPECT_DOUBLE_EQ(l.transfer_time_s(0), 5e-6);
}

TEST(Link, Validation) {
  EXPECT_THROW(Link(0, 1, 1, 1.0, 0.0), InternalError);   // same endpoints
  EXPECT_THROW(Link(0, 0, 1, 0.0, 0.0), InternalError);   // zero bandwidth
  EXPECT_THROW(Link(0, 0, 1, 1.0, -1.0), InternalError);  // negative latency
}

TEST(MemoryNode, Validation) {
  EXPECT_THROW(MemoryNode(0, "zero", 0), InternalError);
  const MemoryNode m(1, "ok", 42);
  EXPECT_EQ(m.capacity_bytes(), 42u);
  EXPECT_EQ(m.name(), "ok");
}

}  // namespace
}  // namespace hetflow::hw
