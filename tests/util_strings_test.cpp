#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hetflow::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWs, DropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Trim, Variants) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("\t\n hi"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("hetflow", "het"));
  EXPECT_FALSE(starts_with("het", "hetflow"));
  EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("file.cpp", ".hpp"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Format, LongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(format("%s", big.c_str()).size(), 500u);
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(1.5 * 1024 * 1024), "1.50 MB");
  EXPECT_EQ(human_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(HumanSeconds, Units) {
  EXPECT_EQ(human_seconds(2.5), "2.500 s");
  EXPECT_EQ(human_seconds(0.012), "12.000 ms");
  EXPECT_EQ(human_seconds(34e-6), "34.000 us");
  EXPECT_EQ(human_seconds(5e-9), "5 ns");
  EXPECT_EQ(human_seconds(0.0), "0.000 s");
}

TEST(HumanCount, Units) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.50K");
  EXPECT_EQ(human_count(2.5e6), "2.50M");
  EXPECT_EQ(human_count(7e9), "7.00G");
}

TEST(ParseScaled, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_scaled("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_scaled("-1.5"), -1.5);
  EXPECT_DOUBLE_EQ(parse_scaled("1e9"), 1e9);
  EXPECT_DOUBLE_EQ(parse_scaled("  7 "), 7.0);
}

TEST(ParseScaled, SiSuffixes) {
  EXPECT_DOUBLE_EQ(parse_scaled("2K"), 2e3);
  EXPECT_DOUBLE_EQ(parse_scaled("3M"), 3e6);
  EXPECT_DOUBLE_EQ(parse_scaled("1.5G"), 1.5e9);
  EXPECT_DOUBLE_EQ(parse_scaled("2T"), 2e12);
}

TEST(ParseScaled, BinarySuffixes) {
  EXPECT_DOUBLE_EQ(parse_scaled("1Ki"), 1024.0);
  EXPECT_DOUBLE_EQ(parse_scaled("4Mi"), 4.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(parse_scaled("2Gi"), 2.0 * 1024 * 1024 * 1024);
}

TEST(ParseScaled, Errors) {
  EXPECT_THROW(parse_scaled(""), ParseError);
  EXPECT_THROW(parse_scaled("abc"), ParseError);
  EXPECT_THROW(parse_scaled("1X"), ParseError);
  EXPECT_THROW(parse_scaled("1 KB"), ParseError);  // unknown 'KB'
}

TEST(IsNumber, Variants) {
  EXPECT_TRUE(is_number("3.5"));
  EXPECT_TRUE(is_number("-2e-3"));
  EXPECT_TRUE(is_number(" 7 "));
  EXPECT_FALSE(is_number("7x"));
  EXPECT_FALSE(is_number(""));
  EXPECT_FALSE(is_number("nanx"));
}

}  // namespace
}  // namespace hetflow::util
