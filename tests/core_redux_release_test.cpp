// Redux (commutative reduction) access mode and timed task release.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/mct.hpp"
#include "util/strings.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_only_codelet;
using hetflow::testing::exec_windows;

TEST(Redux, ContributorsDoNotOrderAgainstEachOther) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto acc = rt.register_data("acc", 1024);
  const TaskId init =
      rt.submit("init", cpu_only_codelet(), 1e9,
                {{acc, data::AccessMode::Write}});
  std::vector<TaskId> contributors;
  for (int i = 0; i < 4; ++i) {
    contributors.push_back(rt.submit(util::format("part%d", i),
                                     cpu_only_codelet(), 6e9,
                                     {{acc, data::AccessMode::Redux}}));
  }
  const TaskId reader = rt.submit("read", cpu_only_codelet(), 1e9,
                                  {{acc, data::AccessMode::Read}});
  // Contributors depend only on init; the reader depends on all of them.
  for (TaskId id : contributors) {
    EXPECT_EQ(rt.task(id).dependencies, (std::vector<TaskId>{init}));
  }
  // Reader orders after every contributor plus the (transitively
  // implied) initial writer.
  EXPECT_EQ(rt.task(reader).dependencies.size(), contributors.size() + 1);
  rt.wait_all();
  // All four contributors ran in parallel on the 4 cores (~1 s each, so
  // the whole run is ~3 s: init + parallel redux + read — not ~6 s).
  const auto windows = exec_windows(rt.tracer());
  double max_contrib_end = 0.0;
  for (std::size_t i = 1; i < contributors.size(); ++i) {
    // Pairwise temporal overlap with contributor 0.
    EXPECT_LT(windows.at(contributors[i]).first,
              windows.at(contributors[0]).second);
    max_contrib_end =
        std::max(max_contrib_end, windows.at(contributors[i]).second);
  }
  EXPECT_GE(windows.at(reader).first, max_contrib_end - 1e-9);
}

TEST(Redux, WriterAfterReduxWaitsForAllContributors) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto acc = rt.register_data("acc", 1024);
  std::vector<TaskId> contributors;
  for (int i = 0; i < 3; ++i) {
    contributors.push_back(rt.submit(util::format("part%d", i),
                                     cpu_only_codelet(), 2e9,
                                     {{acc, data::AccessMode::Redux}}));
  }
  const TaskId writer = rt.submit("reset", cpu_only_codelet(), 1e9,
                                  {{acc, data::AccessMode::Write}});
  EXPECT_EQ(rt.task(writer).dependencies.size(), 3u);
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  for (TaskId id : contributors) {
    EXPECT_GE(windows.at(writer).first, windows.at(id).second - 1e-9);
  }
}

TEST(Redux, ReaderAfterReadDoesNotSerializeContributors) {
  // read -> redux x2: contributors wait for the reader (they overwrite),
  // but not for each other.
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto acc = rt.register_data("acc", 1024);
  const TaskId reader = rt.submit("read", cpu_only_codelet(), 2e9,
                                  {{acc, data::AccessMode::Read}});
  const TaskId c1 = rt.submit("c1", cpu_only_codelet(), 2e9,
                              {{acc, data::AccessMode::Redux}});
  const TaskId c2 = rt.submit("c2", cpu_only_codelet(), 2e9,
                              {{acc, data::AccessMode::Redux}});
  EXPECT_EQ(rt.task(c1).dependencies, (std::vector<TaskId>{reader}));
  EXPECT_EQ(rt.task(c2).dependencies, (std::vector<TaskId>{reader}));
  rt.wait_all();
  const auto windows = exec_windows(rt.tracer());
  EXPECT_LT(windows.at(c1).first, windows.at(c2).second);
  EXPECT_LT(windows.at(c2).first, windows.at(c1).second);
}

TEST(Redux, SpeedsUpReductionVersusReadWrite) {
  const hw::Platform p = hw::make_cpu_only(8);
  double redux_makespan = 0.0;
  double rw_makespan = 0.0;
  for (const bool use_redux : {true, false}) {
    Runtime rt(p, std::make_unique<sched::MctScheduler>());
    const auto acc = rt.register_data("acc", 1024);
    for (int i = 0; i < 8; ++i) {
      rt.submit(util::format("p%d", i), cpu_only_codelet(), 6e9,
                {{acc, use_redux ? data::AccessMode::Redux
                                 : data::AccessMode::ReadWrite}});
    }
    rt.wait_all();
    (use_redux ? redux_makespan : rw_makespan) = rt.stats().makespan_s;
  }
  // RW serializes the 8 accumulations (~8 s); Redux runs them in
  // parallel (~1 s).
  EXPECT_LT(redux_makespan, rw_makespan / 4.0);
}

TEST(ReleaseTime, TaskWaitsForItsRelease) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const TaskId id = rt.submit("late", cpu_only_codelet(), 1e9, {});
  rt.task(id).set_release_time(5.0);
  rt.wait_all();
  EXPECT_GE(rt.task(id).times().ready, 5.0);
  EXPECT_GE(rt.task(id).times().started, 5.0);
}

TEST(ReleaseTime, ZeroReleaseBehavesAsBefore) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const TaskId id = rt.submit("now", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_DOUBLE_EQ(rt.task(id).times().ready, 0.0);
}

TEST(ReleaseTime, DependenciesStillGate) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 64);
  const TaskId slow = rt.submit("slow", cpu_only_codelet(), 60e9,
                                {{d, data::AccessMode::Write}});  // ~10 s
  const TaskId gated = rt.submit("gated", cpu_only_codelet(), 1e9,
                                 {{d, data::AccessMode::Read}});
  rt.task(gated).set_release_time(1.0);  // release < dependency completion
  rt.wait_all();
  EXPECT_GE(rt.task(gated).times().ready,
            rt.task(slow).times().completed - 1e-9);
}

TEST(ReleaseTime, ReleaseAfterDependencyCompletion) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("d", 64);
  rt.submit("fast", cpu_only_codelet(), 1e9, {{d, data::AccessMode::Write}});
  const TaskId gated = rt.submit("gated", cpu_only_codelet(), 1e9,
                                 {{d, data::AccessMode::Read}});
  rt.task(gated).set_release_time(10.0);
  rt.wait_all();
  EXPECT_NEAR(rt.task(gated).times().ready, 10.0, 1e-9);
}

TEST(ReleaseTime, ManyStaggeredReleasesAllComplete) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  for (int i = 0; i < 50; ++i) {
    const TaskId id =
        rt.submit(util::format("t%d", i), cpu_only_codelet(), 5e8, {});
    rt.task(id).set_release_time(0.1 * i);
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 50u);
  // Horizon dominated by the last release (4.9 s) + one task (~0.04 s).
  EXPECT_NEAR(rt.stats().makespan_s, 4.94, 0.05);
}

}  // namespace
}  // namespace hetflow::core
