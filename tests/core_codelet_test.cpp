#include "core/codelet.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/task.hpp"
#include "util/error.hpp"

namespace hetflow::core {
namespace {

TEST(Codelet, IdsAreUnique) {
  const Codelet a("a");
  const Codelet b("b");
  EXPECT_NE(a.id(), b.id());
}

TEST(Codelet, EmptyNameRejected) {
  EXPECT_THROW(Codelet(""), util::InternalError);
}

TEST(Codelet, ImplementAndQuery) {
  Codelet c("gemm");
  EXPECT_FALSE(c.implemented());
  c.implement(hw::DeviceType::Gpu, 0.9).implement(hw::DeviceType::Cpu, 0.5);
  EXPECT_TRUE(c.implemented());
  EXPECT_TRUE(c.supports(hw::DeviceType::Gpu));
  EXPECT_TRUE(c.supports(hw::DeviceType::Cpu));
  EXPECT_FALSE(c.supports(hw::DeviceType::Fpga));
  EXPECT_DOUBLE_EQ(c.efficiency(hw::DeviceType::Gpu), 0.9);
  EXPECT_DOUBLE_EQ(c.efficiency(hw::DeviceType::Fpga), 0.0);
}

TEST(Codelet, EfficiencyRangeValidated) {
  Codelet c("x");
  EXPECT_THROW(c.implement(hw::DeviceType::Cpu, 0.0), util::InternalError);
  EXPECT_THROW(c.implement(hw::DeviceType::Cpu, 1.5), util::InternalError);
  EXPECT_NO_THROW(c.implement(hw::DeviceType::Cpu, 1.0));
}

TEST(Codelet, ComputeSecondsFormula) {
  Codelet c("k");
  c.implement(hw::DeviceType::Cpu, 0.5);
  const hw::Device d(0, "c", hw::DeviceType::Cpu, 10.0, 0);  // 10 GFLOPS
  // 1e9 flops at 10e9 * 0.5 = 5e9 flop/s -> 0.2 s.
  EXPECT_DOUBLE_EQ(c.compute_seconds(d, 1e9), 0.2);
  EXPECT_DOUBLE_EQ(c.compute_seconds(d, 0.0), 0.0);
}

TEST(Codelet, ComputeSecondsUnsupportedThrows) {
  Codelet c("k");
  c.implement(hw::DeviceType::Gpu, 0.8);
  const hw::Device d(0, "c", hw::DeviceType::Cpu, 10.0, 0);
  EXPECT_THROW(c.compute_seconds(d, 1e9), util::InvalidArgument);
}

TEST(Codelet, MakeFactory) {
  const CodeletPtr c = Codelet::make(
      "multi", {{hw::DeviceType::Cpu, 0.4}, {hw::DeviceType::Fpga, 0.7}});
  EXPECT_EQ(c->name(), "multi");
  EXPECT_TRUE(c->supports(hw::DeviceType::Fpga));
  EXPECT_FALSE(c->supports(hw::DeviceType::Gpu));
}

TEST(Task, ConstructionValidates) {
  const CodeletPtr c =
      Codelet::make("k", {{hw::DeviceType::Cpu, 0.5}});
  EXPECT_NO_THROW(Task(0, "t", c, 1e9, {}));
  EXPECT_THROW(Task(0, "t", nullptr, 1e9, {}), util::InternalError);
  EXPECT_THROW(Task(0, "t", c, -1.0, {}), util::InternalError);
  const auto empty = std::make_shared<Codelet>("empty");
  EXPECT_THROW(Task(0, "t", empty, 1.0,
                    std::span<const data::Access>{}),
               util::InternalError);
}

TEST(Task, InitialState) {
  const CodeletPtr c = Codelet::make("k", {{hw::DeviceType::Cpu, 0.5}});
  const std::vector<data::Access> accesses = {
      {0, data::AccessMode::Read}, {1, data::AccessMode::Write}};
  const Task t(3, "mytask", c, 2e9, accesses);
  EXPECT_EQ(t.id(), 3u);
  EXPECT_EQ(t.name(), "mytask");
  EXPECT_EQ(t.state(), TaskState::Submitted);
  EXPECT_EQ(t.accesses().size(), 2u);
  EXPECT_EQ(t.attempts(), 0u);
  EXPECT_EQ(t.priority(), 0.0);
  EXPECT_FALSE(t.dvfs_state().has_value());
}

TEST(TaskState, Names) {
  EXPECT_STREQ(to_string(TaskState::Submitted), "submitted");
  EXPECT_STREQ(to_string(TaskState::Ready), "ready");
  EXPECT_STREQ(to_string(TaskState::Queued), "queued");
  EXPECT_STREQ(to_string(TaskState::Running), "running");
  EXPECT_STREQ(to_string(TaskState::Completed), "completed");
}

}  // namespace
}  // namespace hetflow::core
