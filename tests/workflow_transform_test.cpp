#include "workflow/transform.hpp"

#include <gtest/gtest.h>

#include "hw/presets.hpp"
#include "workflow/generators.hpp"

namespace hetflow::workflow {
namespace {

TEST(Cluster, MergesPrivateChain) {
  // a -> f1 -> b -> f2 -> c, nothing shared: collapses into one task.
  Workflow w("chain3");
  const auto in = w.add_file("in", 10);
  const auto f1 = w.add_file("f1", 10);
  const auto f2 = w.add_file("f2", 10);
  const auto out = w.add_file("out", 10);
  w.add_task("a", "compute", 1e6, {in}, {f1});
  w.add_task("b", "compute", 2e6, {f1}, {f2});
  w.add_task("c", "compute", 3e6, {f2}, {out});
  ClusterStats stats;
  const Workflow clustered = cluster_linear_chains(w, 1e12, &stats);
  EXPECT_EQ(clustered.task_count(), 1u);
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_EQ(stats.removed(), 2u);
  EXPECT_DOUBLE_EQ(clustered.tasks()[0].flops, 6e6);
  // Workflow inputs/outputs survive; private intermediates are gone.
  EXPECT_EQ(clustered.file_count(), 2u);
}

TEST(Cluster, FlopBudgetLimitsMerging) {
  Workflow w("chain");
  const auto in = w.add_file("in", 10);
  const auto f1 = w.add_file("f1", 10);
  const auto out = w.add_file("out", 10);
  w.add_task("a", "compute", 5e6, {in}, {f1});
  w.add_task("b", "compute", 6e6, {f1}, {out});
  ClusterStats stats;
  const Workflow clustered = cluster_linear_chains(w, 1e7, &stats);
  // 5e6 + 6e6 > 1e7: no merge.
  EXPECT_EQ(clustered.task_count(), 2u);
  EXPECT_EQ(stats.merges, 0u);
}

TEST(Cluster, SharedIntermediateBlocksMerge) {
  // a's output feeds two consumers: a must stay separate.
  Workflow w("fanout");
  const auto in = w.add_file("in", 10);
  const auto mid = w.add_file("mid", 10);
  const auto o1 = w.add_file("o1", 10);
  const auto o2 = w.add_file("o2", 10);
  w.add_task("a", "compute", 1e6, {in}, {mid});
  w.add_task("b", "compute", 1e6, {mid}, {o1});
  w.add_task("c", "compute", 1e6, {mid}, {o2});
  const Workflow clustered = cluster_linear_chains(w, 1e12);
  EXPECT_EQ(clustered.task_count(), 3u);
}

TEST(Cluster, KindFollowsHeavierHalf) {
  Workflow w("kinds");
  const auto in = w.add_file("in", 10);
  const auto mid = w.add_file("mid", 10);
  const auto out = w.add_file("out", 10);
  w.add_task("heavy", "gemm", 9e9, {in}, {mid});
  w.add_task("light", "io", 1e6, {mid}, {out});
  const Workflow clustered = cluster_linear_chains(w, 1e12);
  ASSERT_EQ(clustered.task_count(), 1u);
  EXPECT_EQ(clustered.tasks()[0].kind, "gemm");
}

TEST(Cluster, PreservesSemanticsOnGeneratedWorkflow) {
  const Workflow original = make_epigenomics(2, 4);
  ClusterStats stats;
  const Workflow clustered = cluster_linear_chains(original, 1e12, &stats);
  EXPECT_LT(clustered.task_count(), original.task_count());
  EXPECT_NO_THROW(clustered.validate());
  // Total work is conserved.
  EXPECT_NEAR(clustered.total_flops(), original.total_flops(), 1.0);
  EXPECT_FALSE(clustered.task_graph().has_cycle());
}

TEST(Cluster, ReducesMakespanForTinyTaskChains) {
  // Many 4-stage chains of tiny tasks: per-task overhead dominates, so
  // clustering shrinks the makespan.
  Workflow w("tiny-chains");
  for (int c = 0; c < 64; ++c) {
    std::size_t carry =
        w.add_file("in" + std::to_string(c), 1024);
    for (int s = 0; s < 4; ++s) {
      const std::size_t next = w.add_file(
          "f" + std::to_string(c) + "_" + std::to_string(s), 1024);
      w.add_task("t" + std::to_string(c) + "_" + std::to_string(s),
                 "compute", 1e4, {carry}, {next});
      carry = next;
    }
  }
  const Workflow clustered = cluster_linear_chains(w, 1e12);
  EXPECT_EQ(clustered.task_count(), 64u);
  const hw::Platform p = hw::make_cpu_only(4);
  const auto lib = CodeletLibrary::standard();
  const double before = run_workflow(p, "mct", w, lib).makespan_s;
  const double after = run_workflow(p, "mct", clustered, lib).makespan_s;
  EXPECT_LT(after, before);
}

TEST(Prune, DropsOnlyDeadFiles) {
  Workflow w("dead");
  const auto used = w.add_file("used", 10);
  w.add_file("dead1", 10);
  w.add_file("dead2", 10);
  const auto out = w.add_file("out", 10);
  w.add_task("t", "compute", 1e6, {used}, {out});
  std::size_t removed = 0;
  const Workflow pruned = prune_dead_files(w, &removed);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(pruned.file_count(), 2u);
  EXPECT_EQ(pruned.task_count(), 1u);
  EXPECT_NO_THROW(pruned.validate());
}

TEST(Prune, NoopWhenAllUsed) {
  const Workflow w = make_montage(8);
  std::size_t removed = 0;
  const Workflow pruned = prune_dead_files(w, &removed);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(pruned.file_count(), w.file_count());
}

}  // namespace
}  // namespace hetflow::workflow
