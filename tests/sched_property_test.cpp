// Cross-cutting scheduler invariants, swept over (policy x workflow x
// platform) with TEST_P. These are the safety properties every policy
// must uphold regardless of quality:
//
//   1. every task completes exactly once;
//   2. no device executes two tasks at the same simulated time;
//   3. a task never starts before its dependencies completed;
//   4. makespan >= the critical-path lower bound and >= the best-device
//      work lower bound;
//   5. identical (seed, policy, workflow) -> identical makespan (replay).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::sched {
namespace {

enum class Platform { CpuOnly, Workstation, HpcNode };
enum class Shape { Montage, Epigenomics, Cybershake, Ligo, Sipht,
                   Cholesky, Layered };

using Combo = std::tuple<std::string, Shape, Platform>;

hw::Platform make_platform(Platform kind) {
  switch (kind) {
    case Platform::CpuOnly:
      return hw::make_cpu_only(4);
    case Platform::Workstation:
      return hw::make_workstation();
    case Platform::HpcNode:
      return hw::make_hpc_node(4, 2, 1);
  }
  throw util::InternalError("unreachable");
}

workflow::Workflow make_shape(Shape shape) {
  switch (shape) {
    case Shape::Montage:
      return workflow::make_montage(10);
    case Shape::Epigenomics:
      return workflow::make_epigenomics(2, 4);
    case Shape::Cybershake:
      return workflow::make_cybershake(2, 5);
    case Shape::Ligo:
      return workflow::make_ligo(8, 3);
    case Shape::Sipht:
      return workflow::make_sipht(3, 4);
    case Shape::Cholesky:
      return workflow::make_cholesky(5, 1024);
    case Shape::Layered:
      return workflow::make_random_layered(6, 5, 0.5, 17);
  }
  throw util::InternalError("unreachable");
}

class SchedulerProperties : public ::testing::TestWithParam<Combo> {};

TEST_P(SchedulerProperties, SafetyInvariantsHold) {
  const auto& [policy, shape, platform_kind] = GetParam();
  const hw::Platform platform = make_platform(platform_kind);
  const workflow::Workflow wf = make_shape(shape);
  const auto lib = workflow::CodeletLibrary::standard();

  core::Runtime rt(platform, make_scheduler(policy));
  const auto ids = workflow::submit_workflow(rt, wf, lib);
  rt.wait_all();

  // (1) every task completed exactly once.
  EXPECT_EQ(rt.stats().tasks_completed, wf.task_count());
  std::map<std::uint64_t, int> exec_count;
  for (const trace::Span& span : rt.tracer().spans()) {
    if (span.kind == trace::SpanKind::Exec) {
      ++exec_count[span.task_id];
    }
  }
  EXPECT_EQ(exec_count.size(), wf.task_count());
  for (const auto& [task, count] : exec_count) {
    EXPECT_EQ(count, 1) << "task " << task;
  }

  // (2) device serialization.
  hetflow::testing::expect_no_device_overlap(rt.tracer(), platform);

  // (3) dependency ordering in simulated time.
  const auto windows = hetflow::testing::exec_windows(rt.tracer());
  for (core::TaskId id : ids) {
    const core::Task& task = rt.task(id);
    for (core::TaskId dep : task.dependencies) {
      EXPECT_GE(windows.at(id).first, windows.at(dep).second - 1e-9)
          << task.name() << " started before its dependency";
    }
  }

  // (4) lower bounds. Critical path with the fastest possible execution
  // per task, and total work over aggregate throughput.
  const util::Digraph graph = wf.task_graph();
  std::vector<double> best_exec(wf.task_count());
  double total_best_work = 0.0;
  for (std::size_t t = 0; t < wf.task_count(); ++t) {
    const core::CodeletPtr codelet = lib.get(wf.tasks()[t].kind);
    double best = std::numeric_limits<double>::infinity();
    for (const hw::Device& device : platform.devices()) {
      if (!codelet->supports(device.type())) {
        continue;
      }
      // Fastest possible execution: the highest-frequency DVFS point
      // (DVFS-aware policies may boost above nominal).
      double fastest_scale = 1.0;
      for (std::size_t s = 0; s < device.dvfs_states().size(); ++s) {
        fastest_scale = std::min(fastest_scale, device.time_scale(s));
      }
      best = std::min(best,
                      codelet->compute_seconds(device, wf.tasks()[t].flops) *
                          fastest_scale);
    }
    ASSERT_TRUE(std::isfinite(best));
    best_exec[t] = best;
    total_best_work += best;
  }
  const double cp_bound = graph.critical_path(best_exec);
  EXPECT_GE(rt.stats().makespan_s, cp_bound - 1e-9)
      << "makespan below critical-path bound";
  const double area_bound =
      total_best_work / static_cast<double>(platform.device_count());
  EXPECT_GE(rt.stats().makespan_s, area_bound - 1e-9)
      << "makespan below work/area bound";

  // (5) deterministic replay.
  core::Runtime replay(platform, make_scheduler(policy));
  workflow::submit_workflow(replay, wf, lib);
  replay.wait_all();
  EXPECT_DOUBLE_EQ(replay.stats().makespan_s, rt.stats().makespan_s);
  EXPECT_EQ(replay.stats().transfers.bytes_moved,
            rt.stats().transfers.bytes_moved);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  const std::vector<std::string> policies = scheduler_names();
  const std::vector<Shape> shapes = {Shape::Montage, Shape::Epigenomics,
                                     Shape::Cybershake, Shape::Ligo,
                                     Shape::Sipht, Shape::Cholesky,
                                     Shape::Layered};
  const std::vector<Platform> platforms = {
      Platform::CpuOnly, Platform::Workstation, Platform::HpcNode};
  for (const std::string& policy : policies) {
    for (Shape shape : shapes) {
      // Rotate platforms so the suite stays fast while every policy sees
      // every platform kind across shapes.
      const Platform platform =
          platforms[(static_cast<std::size_t>(shape) +
                     std::hash<std::string>{}(policy)) %
                    platforms.size()];
      combos.emplace_back(policy, shape, platform);
    }
  }
  return combos;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto& [policy, shape, platform] = info.param;
  static constexpr const char* kShapes[] = {"montage", "epigenomics",
                                            "cybershake", "ligo", "sipht",
                                            "cholesky", "layered"};
  static constexpr const char* kPlatforms[] = {"cpu", "ws", "hpc"};
  std::string name = policy + "_" +
                     kShapes[static_cast<std::size_t>(shape)] + "_" +
                     kPlatforms[static_cast<std::size_t>(platform)];
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerProperties,
                         ::testing::ValuesIn(all_combos()), combo_name);

}  // namespace
}  // namespace hetflow::sched
