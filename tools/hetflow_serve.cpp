// hetflow_serve — multi-tenant workflow-as-a-service front end.
//
// Reads a JSONL script (see serve/protocol.hpp) from a file or stdin and
// serves it on one shared simulated platform: admission control with
// backpressure, weighted fair-share + priority release, batched execution
// on the existing runtime substrate, deterministic under a fixed seed.
//
//   $ hetflow_serve --script workload.jsonl --platform hpc:8,4,0 --audit
//   $ printf '{"op":"tenant","name":"a"}\n{"op":"submit","tenant":0}\n
//     {"op":"drain"}\n' | hetflow_serve --csv
//   $ hetflow_serve --script w.jsonl --checkpoint serve.ckpt
//         --max-batches 3            # stop early, state on disk
//   $ hetflow_serve --script w.jsonl --resume serve.ckpt   # finish it
//   $ hetflow_serve --script w.jsonl --replicas 8 --jobs 8
//         # replica determinism harness: all CSVs must be byte-identical
#include <fstream>
#include <iostream>
#include <sstream>

#include "exec/thread_pool.hpp"
#include "serve/engine.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workflow/spec.hpp"

namespace {

std::string read_script_text(const std::string& path) {
  if (path.empty() || path == "-") {
    std::ostringstream text;
    text << std::cin.rdbuf();
    return text.str();
  }
  std::ifstream in(path);
  if (!in) {
    throw hetflow::util::Error("cannot open script '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw hetflow::util::Error("cannot open '" + path + "'");
  }
  out << content;
  std::cout << what << " written to " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetflow;
  util::Cli cli("hetflow_serve",
                "serve multi-tenant workflow submissions on one shared "
                "simulated platform");
  cli.add_option("script", "",
                 "JSONL script path (empty or '-' reads stdin)");
  cli.add_option("platform", "workstation",
                 "platform spec (workstation|edge|cpu:N|hpc:C,G,F|"
                 "cluster:N,C,G) or path to a .json platform file");
  cli.add_option("sched", "dmdas",
                 "dynamic scheduling policy for every batch");
  cli.add_option("seed", "1", "service seed (batches derive their own)");
  cli.add_option("batch-limit", "256", "max jobs released per batch");
  cli.add_option("backlog-cap", "64",
                 "default per-tenant backlog cap (tenant spec overrides)");
  cli.add_option("max-in-flight", "4",
                 "default per-tenant releases per batch (spec overrides)");
  cli.add_option("max-pending", "4096",
                 "global queued-job ceiling before backpressure");
  cli.add_option("defer-cap", "1024",
                 "overflow queue bound under --defer backpressure");
  cli.add_flag("defer",
               "defer over-limit submissions instead of rejecting them");
  cli.add_flag("audit",
               "run the fairness/starvation monitor and print its report");
  cli.add_flag("validate", "runtime invariant audit after every batch");
  cli.add_flag("csv", "print the per-tenant latency table to stdout");
  cli.add_option("latency-csv", "", "write the per-tenant latency table");
  cli.add_option("metrics-out", "", "write per-tenant metrics JSON");
  cli.add_option("checkpoint", "",
                 "write a resumable checkpoint after every batch");
  cli.add_option("resume", "", "resume from a checkpoint file");
  cli.add_option("max-batches", "0",
                 "stop after this many batch ops (0 = run the script out)");
  cli.add_option("replicas", "1",
                 "run N identical engines and require byte-identical "
                 "latency tables (determinism harness)");
  cli.add_option("jobs", "1", "host threads for --replicas");
  try {
    cli.parse(argc, argv);
  } catch (const util::ParseError& error) {
    std::cerr << "error: " << error.what() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  try {
    const serve::ServeScript script =
        serve::parse_script(read_script_text(cli.value("script")));
    serve::ServeConfig config;
    config.scheduler = cli.value("sched");
    config.seed = static_cast<std::uint64_t>(cli.number("seed"));
    config.batch_limit = static_cast<std::size_t>(cli.number("batch-limit"));
    config.backlog_cap = static_cast<std::size_t>(cli.number("backlog-cap"));
    config.max_in_flight =
        static_cast<std::size_t>(cli.number("max-in-flight"));
    config.admission.max_pending =
        static_cast<std::size_t>(cli.number("max-pending"));
    config.admission.defer_cap =
        static_cast<std::size_t>(cli.number("defer-cap"));
    config.admission.policy = cli.flag("defer")
                                  ? serve::BackpressurePolicy::Defer
                                  : serve::BackpressurePolicy::Reject;
    config.audit = cli.flag("audit");
    config.metrics = !cli.value("metrics-out").empty();
    config.validate = cli.flag("validate");
    const std::string platform_spec = cli.value("platform");

    // Replica mode: N engines, each owning its platform outright, run the
    // same script on --jobs threads. Any byte divergence between latency
    // tables is a determinism bug.
    const auto replicas = static_cast<std::size_t>(cli.number("replicas"));
    if (replicas > 1) {
      const auto jobs = static_cast<std::size_t>(cli.number("jobs"));
      const std::vector<std::string> tables = exec::parallel_map<std::string>(
          replicas, jobs, [&](std::size_t) {
            const hw::Platform platform =
                workflow::make_platform_from_spec(platform_spec);
            serve::ServeEngine engine(platform, config);
            serve::run_script(engine, script);
            return engine.latency_csv();
          });
      for (std::size_t i = 1; i < tables.size(); ++i) {
        if (tables[i] != tables[0]) {
          std::cerr << "replica " << i
                    << " diverged from replica 0 (latency tables differ)\n";
          return 1;
        }
      }
      std::cout << replicas << " replicas on " << jobs
                << " jobs: latency tables byte-identical\n";
      if (cli.flag("csv")) {
        std::cout << tables[0];
      }
      if (!cli.value("latency-csv").empty()) {
        write_file(cli.value("latency-csv"), tables[0], "latency table");
      }
      return 0;
    }

    const hw::Platform platform =
        workflow::make_platform_from_spec(platform_spec);
    serve::ServeEngine engine(platform, config);
    std::size_t start_op = 0;
    if (!cli.value("resume").empty()) {
      start_op = serve::ServeEngine::load_checkpoint(cli.value("resume"),
                                                     engine);
      std::cout << "resumed from " << cli.value("resume") << " at op "
                << start_op << " (" << engine.batches_run()
                << " batches done)\n";
    }
    const serve::ScriptRunResult result = serve::run_script(
        engine, script, start_op, cli.value("checkpoint"),
        static_cast<std::size_t>(cli.number("max-batches")));

    std::uint64_t admitted = 0;
    std::uint64_t deferred = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    for (serve::TenantId t = 0; t < engine.tenant_count(); ++t) {
      const serve::TenantStats& stats = engine.stats(t);
      admitted += stats.admitted;
      deferred += stats.deferred;
      rejected += stats.rejected;
      completed += stats.completed;
    }
    std::cout << "served " << engine.tenant_count() << " tenants: "
              << admitted << " admitted, " << deferred << " deferred, "
              << rejected << " rejected, " << completed << " completed in "
              << result.batches << " batches, service clock "
              << util::format("%.3f s", engine.clock())
              << (result.stopped_early ? " (stopped at --max-batches)" : "")
              << '\n';
    if (cli.flag("csv")) {
      std::cout << engine.latency_csv();
    }
    if (!cli.value("latency-csv").empty()) {
      write_file(cli.value("latency-csv"), engine.latency_csv(),
                 "latency table");
    }
    if (!cli.value("metrics-out").empty()) {
      write_file(cli.value("metrics-out"), engine.metrics_json(),
                 "metrics");
    }
    if (config.audit) {
      const check::CheckReport& report = engine.audit_report();
      std::cout << report.summary();
      if (!report.passed()) {
        return 1;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
