// hetflow_check — offline auditor for hetflow runs and workflow files.
//
//   $ hetflow_check --dag pipeline.dag            # structural DAG audit
//   $ hetflow_check --trace trace.json            # Chrome-trace timeline audit
//   $ hetflow_check --audit audit.json            # full run audit (see
//                                                 #   hetflow_run --audit-out)
//   $ hetflow_check --workflow montage:64 --platform hpc:8,2,0 --sched dmda
//                                                 # execute + validate
//   $ hetflow_check --selftest                    # prove the detectors fire
//
// Exit status: 0 = all checks passed, 1 = violations found, 2 = usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "check/audit.hpp"
#include "check/audit_file.hpp"
#include "check/dag.hpp"
#include "check/invariants.hpp"
#include "check/race.hpp"
#include "core/runtime.hpp"
#include "sched/registry.hpp"
#include "serve/audit.hpp"
#include "sim/event_queue.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/spec.hpp"
#include "workflow/workflow.hpp"

namespace {

using namespace hetflow;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Reconstructs the span list of a Chrome trace written by
/// Tracer::to_chrome_json (ph=="X" complete events, tid = device id).
check::RunRecord parse_chrome_trace(const std::string& text) {
  const util::Json doc = util::Json::parse(text);
  check::RunRecord run;
  for (const util::Json& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    const auto device =
        static_cast<hw::DeviceId>(event.at("tid").as_number());
    run.device_count =
        std::max<std::size_t>(run.device_count, device + std::size_t{1});
    if (ph != "X") {
      continue;
    }
    trace::Span span;
    span.name = event.at("name").as_string();
    span.device = device;
    span.start = event.at("ts").as_number() / 1e6;
    span.end = span.start + event.at("dur").as_number() / 1e6;
    if (event.contains("args")) {
      const util::Json& args = event.at("args");
      if (args.contains("task")) {
        span.task_id =
            static_cast<std::uint64_t>(args.at("task").as_number());
      }
      if (args.contains("kind") && args.at("kind").as_string() == "failed") {
        span.kind = trace::SpanKind::FailedExec;
      }
    }
    run.spans.push_back(std::move(span));
  }
  return run;
}

int report_and_exit_code(const check::CheckReport& report) {
  std::cout << report.summary();
  return report.passed() ? 0 : 1;
}

int audit_dag(const std::string& path) {
  const workflow::Workflow wf = workflow::load_dagfile(path);
  check::CheckReport report;
  report.merge(check::check_workflow(wf));
  report.note_check("workflow tasks", wf.task_count());
  std::cout << wf.describe() << '\n';
  return report_and_exit_code(report);
}

int audit_trace(const std::string& path) {
  const check::RunRecord run = parse_chrome_trace(read_file(path));
  check::CheckReport report;
  report.merge(check::check_trace(run));
  report.note_check("trace spans", run.spans.size());
  return report_and_exit_code(report);
}

int audit_file(const std::string& path) {
  const check::AuditRecord record = check::load_audit(path);
  check::CheckReport report;
  std::size_t pairs = 0;
  report.merge(check::check_races(record.run, &pairs));
  report.note_check("conflicting access pairs", pairs);
  report.merge(check::check_trace(record.run));
  report.note_check("trace spans", record.run.spans.size());
  report.merge(check::check_directory(record.directory));
  report.note_check("directory replicas", record.directory.states.size());
  return report_and_exit_code(report);
}

int audit_live_run(const util::Cli& cli) {
  const workflow::Workflow wf = workflow::make_workflow_from_spec(
      cli.value("workflow"), cli.number("scale"));
  const hw::Platform platform =
      workflow::make_platform_from_spec(cli.value("platform"));
  core::RuntimeOptions options;
  options.seed = static_cast<std::uint64_t>(cli.number("seed"));
  core::Runtime runtime(
      platform, sched::make_scheduler(cli.value("sched"), options.seed),
      options);
  workflow::submit_workflow(runtime, wf,
                            workflow::CodeletLibrary::standard());
  runtime.wait_all();
  std::cout << wf.describe() << '\n';
  return report_and_exit_code(check::audit_run(runtime));
}

// --- intentional-violation selftest --------------------------------------
// Seeds one record per violation class and verifies the matching checker
// fires; proves the detectors are not vacuous (wired as a CTest).

check::RunRecord clean_two_writer_run() {
  check::RunRecord run;
  run.device_count = 2;
  run.node_count = 2;
  run.device_memory_node = {0, 1};
  run.handle_bytes = {1024};
  run.handle_home = {0};
  check::TaskRecord w0{0, "w0", {{0, data::AccessMode::Write}}, {}, 0, 0.0,
                       1.0, true};
  check::TaskRecord w1{1,   "w1", {{0, data::AccessMode::Write}}, {0}, 1,
                       1.0, 2.0, true};
  run.tasks = {w0, w1};
  run.spans = {{0, "w0", 0, 0.0, 1.0, trace::SpanKind::Exec},
               {1, "w1", 1, 1.0, 2.0, trace::SpanKind::Exec}};
  return run;
}

bool expect(bool ok, const std::string& what) {
  std::cout << (ok ? "  pass  " : "  FAIL  ") << what << '\n';
  return ok;
}

int selftest() {
  bool ok = true;
  std::cout << "hetflow_check selftest (intentional violations):\n";

  // 0. A correct record is clean — the detectors don't cry wolf.
  {
    const check::RunRecord run = clean_two_writer_run();
    ok &= expect(check::check_races(run).empty() &&
                     check::check_trace(run).empty(),
                 "serialized writers accepted as clean");
  }
  // 1. conflicting-overlap: drop the WAW edge and overlap the writers.
  {
    check::RunRecord run = clean_two_writer_run();
    run.tasks[1].dependencies.clear();
    run.tasks[1].start = 0.5;
    run.spans[1].start = 0.5;
    const auto violations = check::check_races(run);
    ok &= expect(!violations.empty() &&
                     violations[0].kind ==
                         check::ViolationKind::ConflictingOverlap,
                 "overlapping unordered writers -> conflicting-overlap");
  }
  // 2. coherence-state: two Modified owners of one handle.
  {
    check::DirectoryRecord dir;
    dir.node_count = 2;
    dir.handle_bytes = {1024};
    dir.capacity_bytes = {4096, 4096};
    dir.states = {data::ReplicaState::Modified, data::ReplicaState::Modified};
    dir.claimed_resident_bytes = {1024, 1024};
    const auto violations = check::check_directory(dir);
    ok &= expect(!violations.empty() &&
                     violations[0].kind ==
                         check::ViolationKind::CoherenceState,
                 "two Modified owners -> coherence-state");
  }
  // 3. capacity: resident bytes exceed the node's capacity.
  {
    check::DirectoryRecord dir;
    dir.node_count = 1;
    dir.handle_bytes = {4096, 4096};
    dir.capacity_bytes = {6000};
    dir.states = {data::ReplicaState::Shared, data::ReplicaState::Shared};
    dir.claimed_resident_bytes = {8192};
    bool found = false;
    for (const check::Violation& violation : check::check_directory(dir)) {
      found |= violation.kind == check::ViolationKind::CapacityExceeded;
    }
    ok &= expect(found, "over-capacity node -> capacity-exceeded");
  }
  // 4. time-monotonicity: a span that ends before it starts.
  {
    check::RunRecord run = clean_two_writer_run();
    run.spans[1].end = run.spans[1].start - 0.25;
    bool found = false;
    for (const check::Violation& violation : check::check_trace(run)) {
      found |= violation.kind == check::ViolationKind::TimeMonotonicity;
    }
    ok &= expect(found, "span ending before start -> time-monotonicity");
  }
  // 5. serve fairness: the monitor's mirror must flag a release that
  // skips the lexicographic argmin, a batch that released nothing with
  // work pending, a drain that ends non-empty, and per-batch accounting
  // drift — and accept a sequence that follows the rule.
  {
    serve::FairnessMonitor clean;
    clean.add_tenant(2.0, 0, 4);
    clean.add_tenant(1.0, 0, 4);
    clean.on_admit(0);
    clean.on_admit(1);
    clean.begin_batch();
    clean.on_release(0);  // ids tie on zero consumption -> tenant 0
    clean.on_release(1);
    clean.end_batch(2, 2);
    clean.on_consume(0, 1.0);
    clean.on_consume(1, 1.0);
    clean.reconcile_batch(2, 2, 2.0, 2.0);
    clean.on_drained(0);
    ok &= expect(clean.passed(), "rule-following serve run accepted");

    serve::FairnessMonitor unfair;
    unfair.add_tenant(1.0, 0, 4);
    unfair.add_tenant(1.0, 5, 4);  // higher tier must release first
    unfair.on_admit(0);
    unfair.on_admit(1);
    unfair.begin_batch();
    unfair.on_release(0);
    ok &= expect(
        unfair.report().count(check::ViolationKind::FairShare) == 1,
        "release skipping the priority tier -> fair-share");

    serve::FairnessMonitor wedged;
    wedged.add_tenant(1.0, 0, 4);
    wedged.on_admit(0);
    wedged.begin_batch();
    wedged.end_batch(0, 1);
    wedged.on_drained(1);
    ok &= expect(
        wedged.report().count(check::ViolationKind::AdmissionWedge) == 2,
        "empty batch with backlog + non-empty drain -> admission-wedge");

    serve::FairnessMonitor drifted;
    drifted.reconcile_batch(3, 3, 1.0, 1.5);
    ok &= expect(
        drifted.report().count(check::ViolationKind::TenantAccounting) == 1,
        "device-seconds drift -> tenant-accounting");

    // Starvation: two same-tier tenants stay continuously backlogged
    // while only one is ever served, so their weighted consumptions
    // drift past the bounded-deficit limit.
    serve::FairnessMonitor starved;
    starved.add_tenant(1.0, 0, 1);
    starved.add_tenant(1.0, 0, 1);
    for (int batch = 0; batch < 8; ++batch) {
      // Both tenants keep work queued at every batch boundary (the
      // starvation window requires it), but the biased feed releases and
      // credits only tenant 0 — a sequence the real engine never emits.
      starved.on_admit(0);
      starved.on_admit(0);
      starved.on_admit(1);
      starved.begin_batch();
      starved.on_release(0);
      starved.end_batch(1, 3);
      starved.on_consume(0, 1.0);
    }
    ok &= expect(
        starved.report().count(check::ViolationKind::Starvation) > 0,
        "one-sided service under shared backlog -> starvation");
  }
  // 6. event-queue bookkeeping: cancel-heavy traffic must keep the lazy-
  // deletion heap consistent and bounded (carcasses are compacted away
  // once they outnumber half the live events).
  {
    sim::EventQueue queue;
    std::size_t fired = 0;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule_at(static_cast<double>(i) + 1.0,
                                      [&fired] { ++fired; }));
    }
    ok &= expect(queue.debug_consistent() && queue.pending() == 1000,
                 "1000 scheduled events -> consistent bookkeeping");
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      queue.cancel(ids[i]);
    }
    ok &= expect(queue.pending() == 1 && queue.debug_consistent(),
                 "999 cancellations -> one live event, still consistent");
    ok &= expect(queue.heap_entries() < 500,
                 "carcass compaction bounds the heap after mass cancel");
    queue.run();
    ok &= expect(fired == 1 && queue.empty() && queue.debug_consistent(),
                 "surviving event fires once; queue drains clean");
  }
  std::cout << (ok ? "selftest passed\n" : "selftest FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("hetflow_check",
                "audit hetflow runs, traces and workflow files for "
                "schedule races and invariant violations");
  cli.add_option("dag", "", "audit a .dag workflow file");
  cli.add_option("trace", "", "audit a Chrome trace JSON file");
  cli.add_option("audit", "", "audit a full run snapshot "
                 "(hetflow_run --audit-out)");
  cli.add_option("workflow", "",
                 "run this workflow spec under full validation");
  cli.add_option("platform", "workstation",
                 "platform spec for --workflow mode");
  cli.add_option("sched", "dmda", "scheduler for --workflow mode");
  cli.add_option("seed", "42", "simulation seed for --workflow mode");
  cli.add_option("scale", "1", "workflow size multiplier");
  cli.add_flag("selftest",
               "seed one violation per class and verify detection");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  try {
    if (cli.flag("selftest")) {
      return selftest();
    }
    if (!cli.value("dag").empty()) {
      return audit_dag(cli.value("dag"));
    }
    if (!cli.value("trace").empty()) {
      return audit_trace(cli.value("trace"));
    }
    if (!cli.value("audit").empty()) {
      return audit_file(cli.value("audit"));
    }
    if (!cli.value("workflow").empty()) {
      return audit_live_run(cli);
    }
    std::cerr << "error: pick one of --dag, --trace, --audit, --workflow "
                 "or --selftest\n\n"
              << cli.usage();
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
