// hetflow_bench — grid sweeps over (workflow x platform x scheduler x
// seed), one CSV row per run. The companion to hetflow_run for producing
// plot-ready data.
//
//   $ hetflow_bench --workflows montage:64,ligo:50,8
//         --platforms cpu:8,hpc:8,2,0 --scheds mct,dmda,heft --seeds 3
//
// Note: workflow/platform specs contain commas, so list entries are
// separated by whitespace OR by ';':
//
//   $ hetflow_bench --workflows "montage:64;cholesky:12,2048"
//         --platforms "hpc:8,2,0;hpc:8,4,0" --scheds dmda,heft
//
// Cells are independent simulations; `--jobs N` (or HETFLOW_JOBS) fans
// them out over a thread pool. Rows are collected in grid order, so the
// CSV is byte-identical whatever the thread count.
#include <cstdlib>
#include <iostream>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace hetflow;

/// Splits a list on ';' or whitespace, dropping empties.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& chunk : util::split(text, ';')) {
    for (const std::string& field : util::split_ws(chunk)) {
      out.push_back(field);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("hetflow_bench",
                "sweep (workflow x platform x scheduler x seed), CSV out");
  cli.add_option("workflows", "montage:32",
                 "';'-separated workflow specs or .dag paths");
  cli.add_option("platforms", "workstation",
                 "';'-separated platform specs or .json paths");
  cli.add_option("scheds", "mct,dmda,heft",
                 "','-separated scheduler names (no commas inside names)");
  cli.add_option("seeds", "1", "number of seeds per combination");
  cli.add_option("noise", "0", "execution-time noise (cv)");
  cli.add_option("failure-rate", "0", "failure rate per busy-second");
  cli.add_option("jobs", "",
                 "worker threads (0 = all cores; default HETFLOW_JOBS or 1)");
  cli.add_flag("validate",
               "audit every run (also enabled by HETFLOW_BENCH_VALIDATE=1)");
  cli.add_flag("metrics",
               "collect the observability layer per run (also enabled by "
               "HETFLOW_BENCH_METRICS=1)");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  try {
    exec::SweepSpec spec;
    spec.workflows = split_list(cli.value("workflows"));
    spec.platforms = split_list(cli.value("platforms"));
    spec.schedulers = util::split(cli.value("scheds"), ',');
    spec.seeds = static_cast<std::uint64_t>(cli.number("seeds"));
    spec.noise_cv = cli.number("noise");
    spec.failure_rate = cli.number("failure-rate");
    const char* validate_env = std::getenv("HETFLOW_BENCH_VALIDATE");
    spec.validate = cli.flag("validate") ||
                    (validate_env != nullptr && *validate_env != '\0' &&
                     std::string(validate_env) != "0");
    const char* metrics_env = std::getenv("HETFLOW_BENCH_METRICS");
    spec.metrics = cli.flag("metrics") ||
                   (metrics_env != nullptr && *metrics_env != '\0' &&
                    std::string(metrics_env) != "0");
    spec.jobs = cli.provided("jobs") ? exec::parse_jobs(cli.value("jobs"))
                                     : exec::default_jobs();

    const std::vector<exec::SweepRow> rows = exec::run_sweep(spec);
    exec::write_sweep_header(std::cout);
    exec::write_sweep_rows(std::cout, rows);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
