// hetflow_bench — grid sweeps over (workflow x platform x scheduler x
// seed), one CSV row per run. The companion to hetflow_run for producing
// plot-ready data.
//
//   $ hetflow_bench --workflows montage:64,ligo:50,8
//         --platforms cpu:8,hpc:8,2,0 --scheds mct,dmda,heft --seeds 3
//
// Note: workflow/platform specs contain commas, so list entries are
// separated by whitespace OR by ';':
//
//   $ hetflow_bench --workflows "montage:64;cholesky:12,2048"
//         --platforms "hpc:8,2,0;hpc:8,4,0" --scheds dmda,heft
#include <cstdlib>
#include <iostream>

#include "core/runtime.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workflow/spec.hpp"
#include "workflow/workflow.hpp"

namespace {

using namespace hetflow;

/// Splits a list on ';' or whitespace, dropping empties.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& chunk : util::split(text, ';')) {
    for (const std::string& field : util::split_ws(chunk)) {
      out.push_back(field);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("hetflow_bench",
                "sweep (workflow x platform x scheduler x seed), CSV out");
  cli.add_option("workflows", "montage:32",
                 "';'-separated workflow specs or .dag paths");
  cli.add_option("platforms", "workstation",
                 "';'-separated platform specs or .json paths");
  cli.add_option("scheds", "mct,dmda,heft",
                 "','-separated scheduler names (no commas inside names)");
  cli.add_option("seeds", "1", "number of seeds per combination");
  cli.add_option("noise", "0", "execution-time noise (cv)");
  cli.add_option("failure-rate", "0", "failure rate per busy-second");
  cli.add_flag("validate",
               "audit every run (also enabled by HETFLOW_BENCH_VALIDATE=1)");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  try {
    const auto workflows = split_list(cli.value("workflows"));
    const auto platforms = split_list(cli.value("platforms"));
    const auto scheds = util::split(cli.value("scheds"), ',');
    const auto seeds = static_cast<std::uint64_t>(cli.number("seeds"));
    HETFLOW_REQUIRE_MSG(seeds >= 1, "need at least one seed");
    const char* validate_env = std::getenv("HETFLOW_BENCH_VALIDATE");
    const bool validate =
        cli.flag("validate") ||
        (validate_env != nullptr && *validate_env != '\0' &&
         std::string(validate_env) != "0");

    util::CsvWriter csv(std::cout);
    csv.header({"workflow", "tasks", "platform", "sched", "seed",
                "makespan_s", "energy_j", "bytes_moved", "failed_attempts",
                "mean_util"});
    const auto library = workflow::CodeletLibrary::standard();
    for (const std::string& platform_spec : platforms) {
      const hw::Platform platform =
          workflow::make_platform_from_spec(platform_spec);
      for (const std::string& workflow_spec : workflows) {
        const workflow::Workflow wf =
            workflow::make_workflow_from_spec(workflow_spec);
        for (const std::string& sched : scheds) {
          for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
            core::RuntimeOptions options;
            options.validate = validate;
            options.seed = seed;
            options.noise_cv = cli.number("noise");
            options.record_trace = false;
            const double rate = cli.number("failure-rate");
            if (rate > 0.0) {
              options.failure_model = hw::FailureModel::uniform(rate);
            }
            const core::RunStats stats = workflow::run_workflow(
                platform, sched, wf, library, options);
            csv.row({wf.name(), std::to_string(wf.task_count()),
                     platform.name(), sched, std::to_string(seed),
                     util::format("%.6g", stats.makespan_s),
                     util::format("%.6g", stats.total_energy_j()),
                     std::to_string(stats.transfers.bytes_moved),
                     std::to_string(stats.failed_attempts),
                     util::format("%.4f", stats.mean_utilization())});
          }
        }
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
