// hetflow_run — run any workflow on any simulated platform from the
// command line.
//
//   $ hetflow_run --workflow montage:64 --platform hpc:8,2,0 --sched dmda
//   $ hetflow_run --workflow pipeline.dag --platform machine.json
//         --sched heft --gantt --trace-json trace.json
//   $ hetflow_run --workflow cholesky:16,2048 --platform hpc:8,4,0
//         --failure-rate 0.5 --failure-policy reschedule --csv
#include <fstream>
#include <iostream>

#include "check/audit.hpp"
#include "check/audit_file.hpp"
#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/registry.hpp"
#include "trace/report.hpp"
#include "trace/svg.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workflow/campaign.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/spec.hpp"
#include "workflow/workflow.hpp"

namespace {

void print_campaign_result(const hetflow::workflow::CampaignResult& result,
                           const char* strategy, bool csv) {
  using hetflow::util::format;
  if (csv) {
    std::cout << strategy << ',' << result.evaluations << ',' << result.rounds
              << ',' << (result.reached_target ? 1 : 0) << ','
              << format("%.6g", result.best_value) << ','
              << format("%.6g", result.best_x) << ','
              << format("%.6g", result.best_y) << ','
              << format("%.6g", result.makespan_s) << '\n';
    return;
  }
  std::cout << "campaign " << strategy << ": " << result.evaluations
            << " evaluations in " << result.rounds << " rounds, "
            << (result.reached_target ? "target reached" : "budget exhausted")
            << "\n  best " << format("%.6g", result.best_value) << " at ("
            << format("%.4f", result.best_x) << ", "
            << format("%.4f", result.best_y) << "), simulated makespan "
            << format("%.3f s", result.makespan_s) << ", core time "
            << format("%.3f s", result.core_seconds) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetflow;
  util::Cli cli("hetflow_run",
                "run a scientific workflow on a simulated heterogeneous "
                "platform");
  cli.add_option("workflow", "montage:32",
                 "generator spec (see workflow/spec.hpp) or path to a .dag "
                 "file");
  cli.add_option("platform", "workstation",
                 "platform spec (workstation|edge|cpu:N|hpc:C,G,F|"
                 "cluster:N,C,G) or path to a .json platform file");
  cli.add_option("sched", "dmda", "scheduling policy (see --list-scheds)");
  cli.add_option("seed", "42", "simulation seed");
  cli.add_option("noise", "0", "execution-time noise (coefficient of "
                 "variation)");
  cli.add_option("failure-rate", "0",
                 "transient failure rate (failures per busy-second)");
  cli.add_option("failure-policy", "retry", "retry | reschedule");
  cli.add_option("max-attempts", "0",
                 "per-task attempt budget (0 = runtime default)");
  cli.add_option("backoff", "0",
                 "base retry backoff in seconds (0 = immediate retry)");
  cli.add_option("backoff-jitter", "0",
                 "deterministic jitter fraction on the backoff delay");
  cli.add_option("timeout", "0",
                 "per-attempt timeout in seconds (0 = no timeout)");
  cli.add_option("blacklist-after", "0",
                 "quarantine a device after this many consecutive failures "
                 "(0 = never; needs a dynamic scheduler)");
  cli.add_option("probation", "5",
                 "blacklist quarantine length in simulated seconds");
  cli.add_option("on-exhausted", "abort",
                 "abort | drop — what to do when a task's attempt budget "
                 "runs out");
  cli.add_option("campaign", "",
                 "run a discovery campaign instead of one workflow: "
                 "grid | random | surrogate");
  cli.add_option("surface", "branin",
                 "campaign response surface (branin|rosenbrock|quadratic)");
  cli.add_option("surface-noise", "0.1",
                 "campaign observation noise (standard deviation)");
  cli.add_option("evals", "256", "campaign evaluation budget");
  cli.add_option("batch", "8", "campaign simulations per round");
  cli.add_option("max-rounds", "0",
                 "stop the campaign after this many rounds (0 = no limit)");
  cli.add_option("checkpoint", "",
                 "write the campaign state here after every batch");
  cli.add_option("resume", "",
                 "continue a killed campaign from this checkpoint file");
  cli.add_option("scale", "1", "workflow size multiplier (generators only)");
  cli.add_option("trace-json", "", "write a Chrome trace to this path");
  cli.add_option("metrics-out", "",
                 "write the metrics snapshot as JSON to this path (implies "
                 "--metrics)");
  cli.add_option("metrics-csv", "",
                 "write the metrics snapshot as CSV to this path (implies "
                 "--metrics)");
  cli.add_option("chrome-trace", "",
                 "write the merged Chrome trace (exec spans + transfer/"
                 "retry/decision events; Perfetto-loadable) to this path "
                 "(implies --metrics)");
  cli.add_option("decision-log", "",
                 "write the scheduler decision log as JSONL to this path "
                 "(implies --metrics)");
  cli.add_option("gantt-svg", "", "write an SVG Gantt chart to this path");
  cli.add_option("dag-out", "", "save the workflow as a dagfile and exit");
  cli.add_option("audit-out", "",
                 "write a hetflow-verify audit snapshot (for hetflow_check "
                 "--audit) to this path");
  cli.add_flag("validate",
               "run the hetflow-verify audit inside wait_all() and fail on "
               "any violation");
  cli.add_flag("metrics",
               "collect the observability layer (metrics registry, event "
               "log, decision log) even without an output path");
  cli.add_flag("gantt", "print an ASCII Gantt chart");
  cli.add_flag("analyze", "print the realized critical path analysis");
  cli.add_flag("utilization", "print the per-device utilization table");
  cli.add_flag("describe", "print the platform description");
  cli.add_flag("csv", "print one machine-readable CSV result row");
  cli.add_flag("list-scheds", "list scheduling policies and exit");

  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  if (cli.flag("list-scheds")) {
    for (const std::string& name : sched::scheduler_names()) {
      std::cout << name << '\n';
    }
    return 0;
  }

  try {
    // Campaign mode: a discovery loop over many simulation workflows,
    // optionally checkpointed after every batch and resumable.
    if (!cli.value("campaign").empty() || !cli.value("resume").empty()) {
      const hw::Platform platform =
          workflow::make_platform_from_spec(cli.value("platform"));
      const auto max_rounds =
          static_cast<std::size_t>(cli.number("max-rounds"));
      // Campaigns carry the end-of-run snapshot and decision log in the
      // result (the per-batch runtime is internal); the trace/CSV
      // exports remain single-run outputs.
      const auto write_campaign_obs =
          [&cli](const workflow::CampaignResult& result) {
            const auto write = [](const std::string& path,
                                  const std::string& content,
                                  const char* what) {
              std::ofstream out(path);
              if (!out) {
                throw Error("cannot open '" + path + "'");
              }
              out << content;
              std::cout << what << " written to " << path << '\n';
            };
            if (!cli.value("metrics-out").empty()) {
              write(cli.value("metrics-out"), result.metrics_json,
                    "metrics snapshot");
            }
            if (!cli.value("decision-log").empty()) {
              write(cli.value("decision-log"), result.decision_log,
                    "decision log");
            }
          };
      if (!cli.value("resume").empty()) {
        const workflow::CampaignResult result = workflow::resume_campaign(
            platform, cli.value("resume"), max_rounds);
        print_campaign_result(result, "resumed", cli.flag("csv"));
        write_campaign_obs(result);
        return 0;
      }
      const workflow::SearchStrategy strategy =
          workflow::strategy_from_name(cli.value("campaign"));
      const workflow::ResponseSurface surface(
          workflow::ResponseSurface::kind_from_name(cli.value("surface")),
          cli.number("surface-noise"));
      workflow::CampaignConfig config;
      config.max_evaluations = static_cast<std::size_t>(cli.number("evals"));
      config.batch_size = static_cast<std::size_t>(cli.number("batch"));
      config.scheduler = cli.value("sched");
      config.seed = static_cast<std::uint64_t>(cli.number("seed"));
      config.checkpoint_path = cli.value("checkpoint");
      config.max_rounds = max_rounds;
      config.metrics = cli.flag("metrics") ||
                       !cli.value("metrics-out").empty() ||
                       !cli.value("decision-log").empty();
      const workflow::CampaignResult result =
          workflow::run_campaign(platform, surface, strategy, config);
      print_campaign_result(result, workflow::to_string(strategy),
                            cli.flag("csv"));
      write_campaign_obs(result);
      return 0;
    }

    const workflow::Workflow wf = workflow::make_workflow_from_spec(
        cli.value("workflow"), cli.number("scale"));
    if (!cli.value("dag-out").empty()) {
      workflow::save_dagfile(wf, cli.value("dag-out"));
      std::cout << "wrote " << cli.value("dag-out") << '\n';
      return 0;
    }
    const hw::Platform platform =
        workflow::make_platform_from_spec(cli.value("platform"));
    if (cli.flag("describe")) {
      std::cout << platform.describe() << '\n';
    }

    core::RuntimeOptions options;
    options.seed = static_cast<std::uint64_t>(cli.number("seed"));
    options.noise_cv = cli.number("noise");
    const double failure_rate = cli.number("failure-rate");
    if (failure_rate > 0.0) {
      options.failure_model = hw::FailureModel::uniform(failure_rate);
    }
    if (cli.value("failure-policy") == "reschedule") {
      options.failure_policy = core::FailurePolicy::Reschedule;
    } else if (cli.value("failure-policy") != "retry") {
      throw InvalidArgument("failure-policy must be retry or reschedule");
    }
    options.retry.max_attempts =
        static_cast<std::size_t>(cli.number("max-attempts"));
    options.retry.backoff_base_s = cli.number("backoff");
    options.retry.backoff_jitter = cli.number("backoff-jitter");
    options.retry.timeout_s = cli.number("timeout");
    options.retry.blacklist_after =
        static_cast<std::size_t>(cli.number("blacklist-after"));
    options.retry.probation_s = cli.number("probation");
    if (cli.value("on-exhausted") == "drop") {
      options.retry.on_exhausted = core::ExhaustionPolicy::Drop;
    } else if (cli.value("on-exhausted") != "abort") {
      throw InvalidArgument("on-exhausted must be abort or drop");
    }
    options.validate = cli.flag("validate");
    options.metrics = cli.flag("metrics") ||
                      !cli.value("metrics-out").empty() ||
                      !cli.value("metrics-csv").empty() ||
                      !cli.value("chrome-trace").empty() ||
                      !cli.value("decision-log").empty();

    core::Runtime runtime(platform,
                          sched::make_scheduler(cli.value("sched"),
                                                options.seed),
                          options);
    workflow::submit_workflow(runtime, wf,
                              workflow::CodeletLibrary::standard());
    runtime.wait_all();
    const core::RunStats& stats = runtime.stats();

    if (cli.flag("csv")) {
      std::cout << wf.name() << ',' << cli.value("sched") << ','
                << util::format("%.6g", stats.makespan_s) << ','
                << util::format("%.6g", stats.total_energy_j()) << ','
                << stats.transfers.bytes_moved << ','
                << stats.failed_attempts << '\n';
    } else {
      std::cout << wf.describe() << '\n'
                << stats.summary(platform) << '\n';
    }
    if (cli.flag("utilization")) {
      std::cout << trace::utilization_report(runtime.tracer(), platform);
    }
    if (cli.flag("gantt")) {
      std::cout << runtime.tracer().ascii_gantt(platform);
    }
    if (cli.flag("analyze")) {
      std::cout << core::critical_path_report(
          core::analyze_schedule(runtime));
    }
    if (!cli.value("gantt-svg").empty()) {
      trace::SvgOptions svg;
      svg.title = wf.name() + " on " + platform.name() + " (" +
                  cli.value("sched") + ")";
      trace::save_svg(runtime.tracer(), platform, cli.value("gantt-svg"),
                      svg);
      std::cout << "SVG written to " << cli.value("gantt-svg") << '\n';
    }
    if (!cli.value("audit-out").empty()) {
      check::save_audit(check::snapshot_audit(runtime),
                        cli.value("audit-out"));
      std::cout << "audit snapshot written to " << cli.value("audit-out")
                << '\n';
    }
    if (!cli.value("trace-json").empty()) {
      std::ofstream out(cli.value("trace-json"));
      if (!out) {
        throw Error("cannot open '" + cli.value("trace-json") + "'");
      }
      out << runtime.tracer().to_chrome_json(platform);
      std::cout << "trace written to " << cli.value("trace-json") << '\n';
    }
    const auto write_file = [](const std::string& path,
                               const std::string& content,
                               const char* what) {
      std::ofstream out(path);
      if (!out) {
        throw Error("cannot open '" + path + "'");
      }
      out << content;
      std::cout << what << " written to " << path << '\n';
    };
    if (!cli.value("metrics-out").empty()) {
      write_file(cli.value("metrics-out"),
                 runtime.recorder()->metrics().to_json_string(),
                 "metrics snapshot");
    }
    if (!cli.value("metrics-csv").empty()) {
      write_file(cli.value("metrics-csv"),
                 runtime.recorder()->metrics().to_csv(), "metrics CSV");
    }
    if (!cli.value("chrome-trace").empty()) {
      write_file(cli.value("chrome-trace"),
                 obs::chrome_trace_json(runtime.tracer(), platform,
                                        runtime.recorder()),
                 "merged Chrome trace");
    }
    if (!cli.value("decision-log").empty()) {
      write_file(cli.value("decision-log"),
                 runtime.recorder()->decisions_jsonl(platform),
                 "decision log");
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
