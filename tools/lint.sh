#!/usr/bin/env bash
# hetflow-verify lint runner.
#
# Stage 1: hetflow_lint — the project-specific analyzer enforcing the
# determinism, layering, lock-discipline and hygiene contracts
# (docs/static_analysis.md). Runs whenever the binary has been built.
#
# Stage 2: clang-tidy with the repo's .clang-tidy profile over every
# first-party translation unit (src/, tools/, bench/, tests/). When
# clang-tidy is not installed (minimal CI images), falls back to a
# strict warnings-as-errors GCC pass with the extra warning set below so
# the entry point still catches the bulk of bugprone patterns.
#
# Usage:
#   tools/lint.sh [build-dir] [file...]
#
#   build-dir  compilation-database directory (default: build)
#   file...    limit the run to these sources (default: all first-party)
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 ))

cd "$repo_root"

hetflow_lint="$build_dir/tools/hetflow_lint"
if [ -x "$hetflow_lint" ]; then
  echo "lint.sh: hetflow_lint over src tools bench tests"
  if ! "$hetflow_lint" --root "$repo_root" src tools bench tests; then
    exit 1
  fi
else
  echo "lint.sh: $hetflow_lint not built — skipping project rules" >&2
  echo "  (build it: cmake --build $build_dir --target hetflow_lint)" >&2
fi

sources=("$@")
if [ "${#sources[@]}" -eq 0 ]; then
  while IFS= read -r f; do sources+=("$f"); done < <(
    find src tools bench -name '*.cpp' | sort)
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint.sh: no $build_dir/compile_commands.json — configure first:" >&2
    echo "  cmake -B $build_dir -S ." >&2
    exit 2
  fi
  echo "lint.sh: clang-tidy over ${#sources[@]} file(s)"
  status=0
  for f in "${sources[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi

echo "lint.sh: clang-tidy not found — falling back to strict GCC pass"
# Mirror the include setup of the real build; -fsyntax-only keeps it fast.
gcc_flags=(-std=c++20 -fsyntax-only -Wall -Wextra -Werror
           -Wshadow=local -Wnon-virtual-dtor -Wold-style-cast
           -Woverloaded-virtual -Wunused -Wdouble-promotion
           -Wimplicit-fallthrough
           -Isrc -Itests -Ibench)
# GTest/benchmark headers are only needed for tests/; first-party lint
# covers src/, tools/ and bench/ (bench_common includes src only).
status=0
for f in "${sources[@]}"; do
  case "$f" in
    tests/*) continue ;;  # needs gtest include paths; covered by the build
  esac
  if ! g++ "${gcc_flags[@]}" "$f"; then
    echo "lint.sh: diagnostics in $f" >&2
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "lint.sh: clean"
fi
exit "$status"
