#!/usr/bin/env python3
"""Compare two BENCH_core.json files and report per-shape throughput deltas.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Rows are matched on (shape, tasks); rows present in only one file (e.g. a
smoke run diffed against a full run, or a newly added shape) are listed
but never fail the comparison. With --threshold, exits 1 when any matched
row's tasks/s regressed by more than PCT percent; without it the tool is
purely informational. ci/check.sh runs it advisory (no threshold) so a
slow CI machine cannot fail the gate on noise.

Stdlib only by design — the CI image has no third-party Python packages.
"""

import argparse
import json
import sys


def load_runs(path):
    """Returns {(shape, tasks): tasks_per_s} for one BENCH_core.json."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        sys.exit(f"bench_diff: {path}: no 'runs' array (not a BENCH_core.json?)")
    out = {}
    for row in runs:
        try:
            out[(row["shape"], int(row["tasks"]))] = float(row["tasks_per_s"])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"bench_diff: {path}: malformed run row: {row!r}")
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Per-shape tasks/s deltas between two BENCH_core.json files.")
    parser.add_argument("baseline", help="baseline BENCH_core.json")
    parser.add_argument("candidate", help="candidate BENCH_core.json")
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="fail (exit 1) if any matched row regresses by more than PCT%% "
             "(default: report only)")
    args = parser.parse_args()

    base = load_runs(args.baseline)
    cand = load_runs(args.candidate)
    matched = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not matched:
        print("bench_diff: no (shape, tasks) rows in common — nothing to "
              "compare (smoke vs full run?)")
        for key in only_base:
            print(f"  baseline only:  {key[0]:<10} {key[1]:>9}")
        for key in only_cand:
            print(f"  candidate only: {key[0]:<10} {key[1]:>9}")
        return 0

    header = (f"{'shape':<10} {'tasks':>9} {'base tasks/s':>14} "
              f"{'cand tasks/s':>14} {'delta':>8}")
    print(header)
    print("-" * len(header))
    worst = None  # (delta_pct, key)
    for key in matched:
        shape, tasks = key
        b, c = base[key], cand[key]
        delta_pct = (c - b) / b * 100.0 if b > 0.0 else float("inf")
        print(f"{shape:<10} {tasks:>9} {b:>14,.0f} {c:>14,.0f} "
              f"{delta_pct:>+7.1f}%")
        if worst is None or delta_pct < worst[0]:
            worst = (delta_pct, key)
    for key in only_base:
        print(f"{key[0]:<10} {key[1]:>9} {'(baseline only)':>14}")
    for key in only_cand:
        print(f"{key[0]:<10} {key[1]:>9} {'(candidate only)':>37}")

    if args.threshold is not None and worst is not None:
        delta_pct, key = worst
        if delta_pct < -args.threshold:
            print(f"\nFAIL: {key[0]} @ {key[1]} regressed {delta_pct:+.1f}% "
                  f"(threshold -{args.threshold:.1f}%)")
            return 1
        print(f"\nok: worst delta {delta_pct:+.1f}% within "
              f"-{args.threshold:.1f}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
