#!/usr/bin/env python3
"""Compare two BENCH_*.json files and report per-row metric deltas.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
                     [--key FIELDS] [--value FIELD]

Rows are matched on a key tuple (default: per-bench, e.g. (shape, tasks)
for core_overhead, (tenants,) for serve_load) and compared on one metric
(tasks_per_s, submissions_per_s, ...). Rows present in only one file —
a smoke run diffed against a full run, a newly added shape or scale
point — are reported as "baseline only" / "candidate only" and never
fail the comparison; rows missing the key or metric fields are listed as
skipped rather than aborting the diff. With --threshold, exits 1 when
any matched row's metric regressed by more than PCT percent; without it
the tool is purely informational. ci/check.sh runs it advisory (no
threshold) so a slow CI machine cannot fail the gate on noise.

Stdlib only by design — the CI image has no third-party Python packages.
"""

import argparse
import json
import sys
import tempfile

# Per-bench defaults: "bench" field -> (key fields, metric field). Unknown
# bench names fall back to the core_overhead schema; --key/--value always
# win.
SCHEMAS = {
    "core_overhead": (("shape", "tasks"), "tasks_per_s"),
    "serve_load": (("tenants",), "submissions_per_s"),
    "fault_tolerance": (("workflow", "rate"), "makespan_s"),
}
DEFAULT_SCHEMA = SCHEMAS["core_overhead"]


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc.get("runs"), list):
        sys.exit(f"bench_diff: {path}: no 'runs' array (not a BENCH json?)")
    return doc


def extract_rows(doc, path, key_fields, value_field):
    """Returns ({key_tuple: metric}, [skipped_row_reprs])."""
    rows, skipped = {}, []
    for row in doc["runs"]:
        try:
            key = tuple(row[f] for f in key_fields)
            rows[key] = float(row[value_field])
        except (KeyError, TypeError, ValueError):
            skipped.append(repr(row)[:70])
    if skipped and not rows:
        # A different-bench file or wrong --key/--value: every row lacks
        # the fields. Advisory like any other shape-set disagreement —
        # the zero-match diff below says so without aborting.
        print(f"bench_diff: {path}: no row carries fields "
              f"{key_fields} + '{value_field}' (different bench or wrong "
              f"--key/--value?)")
        return {}, []
    return rows, skipped


def fmt_key(key):
    return " ".join(f"{part!s:>9}" for part in key)


def diff(base_doc, cand_doc, base_path, cand_path, key_fields, value_field,
         threshold):
    base, base_skipped = extract_rows(base_doc, base_path, key_fields,
                                      value_field)
    cand, cand_skipped = extract_rows(cand_doc, cand_path, key_fields,
                                      value_field)
    matched = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    for what, skipped in (("baseline", base_skipped),
                          ("candidate", cand_skipped)):
        for row in skipped:
            print(f"  skipped {what} row (missing fields): {row}")

    worst = None  # (delta_pct, key)
    if matched:
        key_head = " ".join(f"{f:>9}" for f in key_fields)
        header = (f"{key_head} {'base ' + value_field:>18} "
                  f"{'cand ' + value_field:>18} {'delta':>8}")
        print(header)
        print("-" * len(header))
        for key in matched:
            b, c = base[key], cand[key]
            delta_pct = (c - b) / b * 100.0 if b > 0.0 else float("inf")
            print(f"{fmt_key(key)} {b:>18,.0f} {c:>18,.0f} "
                  f"{delta_pct:>+7.1f}%")
            if worst is None or delta_pct < worst[0]:
                worst = (delta_pct, key)
    else:
        print("bench_diff: no rows in common — nothing to compare "
              "(smoke vs full run?)")
    for key in only_base:
        print(f"  baseline only:  {fmt_key(key)}")
    for key in only_cand:
        print(f"  candidate only: {fmt_key(key)}")

    if threshold is not None and worst is not None:
        delta_pct, key = worst
        if delta_pct < -threshold:
            print(f"\nFAIL: {fmt_key(key).strip()} regressed "
                  f"{delta_pct:+.1f}% (threshold -{threshold:.1f}%)")
            return 1
        print(f"\nok: worst delta {delta_pct:+.1f}% within "
              f"-{threshold:.1f}% threshold")
    return 0


def selftest():
    """Exercises matching, disjoint sets, schema fallback and the
    threshold gate on synthetic documents; exits non-zero on any miss."""
    core_a = {"bench": "core_overhead", "runs": [
        {"shape": "chain", "tasks": 100, "tasks_per_s": 1000.0},
        {"shape": "fanout", "tasks": 100, "tasks_per_s": 2000.0},
        {"malformed": True}]}
    core_b = {"bench": "core_overhead", "runs": [
        {"shape": "chain", "tasks": 100, "tasks_per_s": 500.0},
        {"shape": "burst", "tasks": 100, "tasks_per_s": 3000.0}]}
    serve_a = {"bench": "serve_load", "runs": [
        {"tenants": 1000, "submissions_per_s": 50000.0},
        {"tenants": 10000, "submissions_per_s": 40000.0}]}
    serve_b = {"bench": "serve_load", "runs": [
        {"tenants": 1000, "submissions_per_s": 55000.0},
        {"tenants": 100000, "submissions_per_s": 30000.0}]}

    def run(base_doc, cand_doc, extra):
        with tempfile.NamedTemporaryFile("w", suffix=".json") as fb, \
                tempfile.NamedTemporaryFile("w", suffix=".json") as fc:
            json.dump(base_doc, fb)
            json.dump(cand_doc, fc)
            fb.flush()
            fc.flush()
            return main([fb.name, fc.name] + extra)

    checks = [
        # Disagreeing shape sets + a malformed row: advisory exit 0.
        ("core advisory", run(core_a, core_b, []), 0),
        # The 50% chain regression must trip a 10% threshold.
        ("core threshold", run(core_a, core_b, ["--threshold", "10"]), 1),
        # serve_load schema is picked up from the bench field.
        ("serve advisory", run(serve_a, serve_b, []), 0),
        # +10% on the only matched serve row passes a threshold.
        ("serve threshold", run(serve_a, serve_b, ["--threshold", "5"]), 0),
        # Explicit --key/--value override the schema table.
        ("explicit fields",
         run(serve_a, serve_b,
             ["--key", "tenants", "--value", "submissions_per_s"]), 0),
        # Cross-bench diff: zero common rows is advisory, not a crash.
        ("cross bench", run(core_a, serve_b, []), 0),
    ]
    ok = True
    for name, got, want in checks:
        good = got == want
        ok &= good
        print(f"  {'pass' if good else 'FAIL'}  {name}: exit {got} "
              f"(want {want})")
    print("selftest " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Per-row metric deltas between two BENCH_*.json files.")
    parser.add_argument("baseline", nargs="?", help="baseline BENCH json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH json")
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="fail (exit 1) if any matched row regresses by more than PCT%% "
             "(default: report only)")
    parser.add_argument(
        "--key", default=None, metavar="FIELDS",
        help="comma-separated row-matching fields (default: per-bench)")
    parser.add_argument(
        "--value", default=None, metavar="FIELD",
        help="metric field to compare (default: per-bench)")
    parser.add_argument(
        "--selftest", action="store_true",
        help="verify the tool against synthetic documents and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")

    base_doc = load_doc(args.baseline)
    cand_doc = load_doc(args.candidate)
    # The baseline names the schema; a cross-bench diff just ends up with
    # zero matched rows, which is advisory by design.
    schema_key, schema_value = SCHEMAS.get(base_doc.get("bench"),
                                           DEFAULT_SCHEMA)
    key_fields = (tuple(f.strip() for f in args.key.split(","))
                  if args.key else schema_key)
    value_field = args.value if args.value else schema_value
    return diff(base_doc, cand_doc, args.baseline, args.candidate,
                key_fields, value_field, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
