// hetflow_lint — project-specific static analyzer enforcing the
// determinism, layering and lock-discipline contracts (plus hygiene).
//
//   $ hetflow_lint src tools bench tests            # lint the tree
//   $ hetflow_lint --json src                       # machine-readable
//   $ hetflow_lint --baseline lint_baseline.txt src # accept pre-existing
//   $ hetflow_lint --write-baseline lint_baseline.txt src
//   $ hetflow_lint --rule determinism src           # one family only
//   $ hetflow_lint --probe-headers src              # + header standalone
//   $ hetflow_lint --list-rules
//
// Suppress a single finding inline with a justifying comment:
//   // hetflow-lint: allow(det-wallclock) — host throughput measurement
// (covers its own line and the next), or file-wide with allow-file(...).
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/project.hpp"
#include "lint/source.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: hetflow_lint [options] <file-or-dir>...\n"
    "  --json                  JSON report instead of text\n"
    "  --baseline <file>       suppress findings listed in the baseline\n"
    "  --write-baseline <file> write current findings as the new baseline\n"
    "  --rule <id|family>      run only this rule/family (repeatable)\n"
    "  --probe-headers         also compile-probe header self-containment\n"
    "  --compiler <cc>         compiler for the probe (default: c++)\n"
    "  --root <dir>            repo root paths are relative to (default: .)\n"
    "  --list-rules            print the rule catalog and exit\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw hetflow::InvalidArgument("hetflow_lint: cannot open '" + path +
                                   "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetflow;
  std::vector<std::string> paths;
  std::vector<std::string> rule_filter;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string root = ".";
  lint::ProjectOptions options;
  bool json = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next_value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw InvalidArgument("hetflow_lint: " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--json") {
        json = true;
      } else if (arg == "--baseline") {
        baseline_path = next_value();
      } else if (arg == "--write-baseline") {
        write_baseline_path = next_value();
      } else if (arg == "--rule") {
        rule_filter.push_back(next_value());
      } else if (arg == "--probe-headers") {
        options.probe_headers = true;
      } else if (arg == "--compiler") {
        options.compiler = next_value();
      } else if (arg == "--root") {
        root = next_value();
      } else if (arg == "--list-rules") {
        std::cout << lint::render_rule_list();
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (!arg.empty() && arg.front() == '-') {
        throw InvalidArgument("hetflow_lint: unknown option '" + arg + "'");
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.empty()) {
      std::cerr << kUsage;
      return 2;
    }

    // The linter's own known-bad fixtures must not fail a tree-wide scan.
    const std::vector<std::string> skip_dirs = {"tests/lint"};
    lint::Project project = lint::build_project(
        lint::load_sources(paths, root, skip_dirs), options);

    lint::Baseline baseline;
    if (!baseline_path.empty()) {
      baseline = lint::Baseline::parse(read_file(baseline_path));
    }
    const lint::AnalysisResult result =
        lint::analyze(project, rule_filter, baseline);

    if (!write_baseline_path.empty()) {
      std::ofstream out(write_baseline_path);
      if (!out) {
        throw InvalidArgument("hetflow_lint: cannot write '" +
                              write_baseline_path + "'");
      }
      out << lint::Baseline::render(result.findings, project);
      std::cerr << "hetflow_lint: baseline written to "
                << write_baseline_path << "\n";
      return 0;
    }

    std::cout << (json ? lint::render_json(result)
                       : lint::render_text(result));
    return result.unsuppressed() == 0 ? 0 : 1;
  } catch (const InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 2;
  } catch (const Error& error) {
    std::cerr << "hetflow_lint: " << error.what() << "\n";
    return 2;
  }
}
