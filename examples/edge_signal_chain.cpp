// Heterogeneity at the edge: a periodic sensing pipeline (filter -> FFT
// -> classify) on a battery-powered node with two weak cores and a DSP.
// Compares the energy-aware DVFS scheduler against the performance-first
// policy across 50 sensing windows.
//
//   $ ./edge_signal_chain
#include <iostream>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace hetflow;
  using data::AccessMode;

  const hw::Platform platform = hw::make_edge_node();
  std::cout << platform.describe() << '\n';

  const auto filter = core::Codelet::make(
      "filter", {{hw::DeviceType::Cpu, 0.45}, {hw::DeviceType::Dsp, 0.7}});
  const auto fft = core::Codelet::make(
      "fft", {{hw::DeviceType::Cpu, 0.35}, {hw::DeviceType::Dsp, 0.8}});
  const auto classify = core::Codelet::make(
      "classify", {{hw::DeviceType::Cpu, 0.5}});

  util::Table table({"policy", "makespan", "busy J", "total J", "EDP"});
  for (const char* policy : {"energy-performance", "energy-edp",
                             "energy-energy"}) {
    core::Runtime runtime(platform, sched::make_scheduler(policy));
    for (int window = 0; window < 50; ++window) {
      const auto tag = util::format("w%d", window);
      const auto samples =
          runtime.register_data("samples_" + tag, 2ull << 20);
      const auto clean = runtime.register_data("clean_" + tag, 2ull << 20);
      const auto spectrum =
          runtime.register_data("spectrum_" + tag, 512ull << 10);
      const auto label = runtime.register_data("label_" + tag, 1024);
      runtime.submit("filter_" + tag, filter, 1.5e8,
                     {{samples, AccessMode::Read},
                      {clean, AccessMode::Write}});
      runtime.submit("fft_" + tag, fft, 4e8,
                     {{clean, AccessMode::Read},
                      {spectrum, AccessMode::Write}});
      runtime.submit("classify_" + tag, classify, 1e8,
                     {{spectrum, AccessMode::Read},
                      {label, AccessMode::Write}});
    }
    runtime.wait_all();
    const core::RunStats& stats = runtime.stats();
    table.add_row({policy, util::human_seconds(stats.makespan_s),
                   util::format("%.2f", stats.busy_energy_j()),
                   util::format("%.2f", stats.total_energy_j()),
                   util::format("%.2f", stats.edp())});
  }
  table.print(std::cout);
  std::cout << "\nenergy-* policies trade completion latency for Joules by "
               "steering work toward\nthe DSP and lower DVFS points.\n";
  return 0;
}
