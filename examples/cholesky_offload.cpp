// Tiled Cholesky factorization with GPU offload — the classic StarPU
// showcase. Tiles are registered as ReadWrite handles; the runtime infers
// the potrf/trsm/syrk/gemm dependency lattice from the access modes and
// the data-aware scheduler keeps tiles resident on the GPU.
//
//   $ ./cholesky_offload [tiles-per-side] [tile-n]
#include <cstdlib>
#include <iostream>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/linalg.hpp"

int main(int argc, char** argv) {
  using namespace hetflow;

  const std::size_t nt =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const std::size_t tile_n =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2048;
  const auto library = workflow::CodeletLibrary::standard();

  std::cout << "Cholesky " << nt << "x" << nt << " tiles of " << tile_n
            << "x" << tile_n << " doubles ("
            << workflow::cholesky_task_count(nt) << " tasks)\n\n";

  for (const char* config : {"cpu-only", "with-gpus"}) {
    const hw::Platform platform = std::string(config) == "cpu-only"
                                      ? hw::make_cpu_only(8)
                                      : hw::make_hpc_node(8, 2, 0);
    core::Runtime runtime(platform, sched::make_scheduler("dmda"));
    workflow::submit_cholesky_inplace(runtime, nt, tile_n, library);
    runtime.wait_all();
    const core::RunStats& stats = runtime.stats();
    const double total_flops =
        static_cast<double>(nt * tile_n) * static_cast<double>(nt * tile_n) *
        static_cast<double>(nt * tile_n) / 3.0;
    std::cout << config << ": makespan "
              << util::human_seconds(stats.makespan_s) << ", "
              << util::format("%.1f GFLOP/s",
                              total_flops / stats.makespan_s / 1e9)
              << ", moved "
              << util::human_bytes(
                     static_cast<double>(stats.transfers.bytes_moved))
              << ", " << stats.data.evictions << " evictions\n";
  }
  return 0;
}
