// Quickstart: the smallest end-to-end hetflow program.
//
// Builds a four-task diamond (produce -> two analyses -> combine), runs
// it on the workstation platform model with the data-aware scheduler, and
// prints the run summary and a Gantt chart.
//
//   $ ./quickstart
#include <iostream>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  using data::AccessMode;

  // 1. A platform: 4 CPU cores + 1 GPU connected over PCIe (simulated).
  const hw::Platform platform = hw::make_workstation();
  std::cout << platform.describe() << '\n';

  // 2. A runtime with a scheduling policy.
  core::Runtime runtime(platform, sched::make_scheduler("dmda"));

  // 3. Data handles (sizes drive simulated transfer costs).
  const auto raw = runtime.register_data("raw-samples", 64ull << 20);
  const auto spectrum = runtime.register_data("spectrum", 16ull << 20);
  const auto stats = runtime.register_data("stats", 1ull << 20);
  const auto report = runtime.register_data("report", 1ull << 20);

  // 4. Codelets declare which device types implement each task kind and
  //    how efficiently.
  const auto ingest = core::Codelet::make(
      "ingest", {{hw::DeviceType::Cpu, 0.4}});
  const auto fft = core::Codelet::make(
      "fft", {{hw::DeviceType::Cpu, 0.35}, {hw::DeviceType::Gpu, 0.7}});
  const auto moments = core::Codelet::make(
      "moments", {{hw::DeviceType::Cpu, 0.5}, {hw::DeviceType::Gpu, 0.6}});
  const auto combine = core::Codelet::make(
      "combine", {{hw::DeviceType::Cpu, 0.5}});

  // 5. Submit tasks; dependencies are inferred from data accesses.
  runtime.submit("ingest", ingest, 2e9, {{raw, AccessMode::Write}});
  runtime.submit("fft", fft, 24e9,
                 {{raw, AccessMode::Read}, {spectrum, AccessMode::Write}});
  runtime.submit("moments", moments, 6e9,
                 {{raw, AccessMode::Read}, {stats, AccessMode::Write}});
  runtime.submit("combine", combine, 1e9,
                 {{spectrum, AccessMode::Read},
                  {stats, AccessMode::Read},
                  {report, AccessMode::Write}});

  // 6. Run to completion in simulated time.
  runtime.wait_all();

  std::cout << runtime.stats().summary(platform) << '\n';
  std::cout << runtime.tracer().ascii_gantt(platform) << '\n';
  return 0;
}
