// Streaming observatory: three always-on instrument pipelines with
// different rates and deadlines share one workstation — the "online"
// side of a scientific discovery system. Shows the streaming layer
// (periodic releases, deadline accounting) and compares schedulers at
// increasing load.
//
//   $ ./observatory_stream
#include <iostream>

#include "hw/presets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workflow/streaming.hpp"

int main() {
  using namespace hetflow;

  const hw::Platform platform = hw::make_workstation();
  const auto library = workflow::CodeletLibrary::standard();

  const auto make_pipelines = [](double rate_scale) {
    std::vector<workflow::PeriodicPipeline> pipelines;
    // Fast photometry stream: small frames at high rate.
    workflow::PeriodicPipeline photometry;
    photometry.name = "photometry";
    photometry.period_s = 0.2 / rate_scale;
    photometry.stages = {workflow::StageSpec{"io", 5e7, 1 << 20},
                         workflow::StageSpec{"filter", 4e8, 1 << 20},
                         workflow::StageSpec{"reduce", 1e8, 64 << 10}};
    pipelines.push_back(photometry);
    // Spectrograph: bigger frames, slower cadence, FFT-heavy.
    workflow::PeriodicPipeline spectro;
    spectro.name = "spectrograph";
    spectro.period_s = 0.5 / rate_scale;
    spectro.stages = {workflow::StageSpec{"io", 1e8, 8 << 20},
                      workflow::StageSpec{"fft", 3e9, 8 << 20},
                      workflow::StageSpec{"reduce", 2e8, 256 << 10}};
    pipelines.push_back(spectro);
    // Transient detector: bursty compute with a tight deadline.
    workflow::PeriodicPipeline transient;
    transient.name = "transient";
    transient.period_s = 1.0 / rate_scale;
    transient.relative_deadline_s = 0.4 / rate_scale;
    transient.stages = {workflow::StageSpec{"compute", 6e9, 4 << 20},
                        workflow::StageSpec{"reduce", 2e8, 64 << 10}};
    pipelines.push_back(transient);
    return pipelines;
  };

  util::Table table({"load", "policy", "instances", "miss%",
                     "mean lat", "max lat"});
  for (double load : {1.0, 2.0, 4.0}) {
    for (const char* policy : {"eager", "dmda"}) {
      const workflow::StreamingResult result = workflow::run_streaming(
          platform, policy, make_pipelines(load), /*horizon_s=*/12.0,
          library);
      double mean = 0.0;
      double worst = 0.0;
      for (const auto& p : result.pipelines) {
        mean += p.mean_latency_s / static_cast<double>(
                                       result.pipelines.size());
        worst = std::max(worst, p.max_latency_s);
      }
      table.add_row({util::format("%.0fx", load), policy,
                     std::to_string(result.total_instances()),
                     util::format("%.1f", result.overall_miss_rate() * 100),
                     util::human_seconds(mean),
                     util::human_seconds(worst)});
    }
  }
  table.print(std::cout);
  std::cout << "\nAt rising ingest rates, data-aware placement keeps the "
               "GPU fed and defers the\nmiss-rate cliff that the blind "
               "policy hits first.\n";
  return 0;
}
