// Montage astronomy-mosaic pipeline on an HPC node.
//
// Generates the Montage workflow (the motivating workload of most
// scientific-workflow papers), runs it with several schedulers on an
// 8-CPU/2-GPU node, and compares makespan, data movement and energy —
// then saves the workflow in the hetflow dagfile format.
//
//   $ ./montage_pipeline [tiles]
#include <cstdlib>
#include <iostream>

#include "hw/presets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

int main(int argc, char** argv) {
  using namespace hetflow;

  const std::size_t tiles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(tiles);
  const auto library = workflow::CodeletLibrary::standard();

  std::cout << wf.describe() << "\n";
  std::cout << "platform: " << platform.name() << "\n\n";

  util::Table table({"scheduler", "makespan", "moved", "energy J", "util%"});
  for (const char* policy :
       {"eager", "random", "mct", "dmda", "heft", "work-stealing"}) {
    const core::RunStats stats =
        workflow::run_workflow(platform, policy, wf, library);
    table.add_row({policy, util::human_seconds(stats.makespan_s),
                   util::human_bytes(
                       static_cast<double>(stats.transfers.bytes_moved)),
                   util::format("%.1f", stats.total_energy_j()),
                   util::format("%.1f", stats.mean_utilization() * 100.0)});
  }
  table.print(std::cout);

  const std::string path = "montage.dag";
  workflow::save_dagfile(wf, path);
  std::cout << "\nworkflow saved to " << path
            << " (reload with workflow::load_dagfile)\n";
  return 0;
}
