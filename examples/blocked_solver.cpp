// Blocked iterative solver showing hetflow's advanced data-access API:
//
//   * partition_data / unpartition_data — update a large state vector in
//     parallel blocks without false RW serialization;
//   * AccessMode::Redux — accumulate the residual norm from all blocks
//     concurrently;
//   * core::analyze_schedule — inspect the realized critical path.
//
// Structure of one iteration (repeated until the fixed iteration count):
//
//   state --partition--> [update block 0..B-1]   (parallel, RW per block)
//                         \___ each also Redux-accumulates `residual`
//   check: reads `residual`, writes `converged`  (serial, tiny)
//
//   $ ./blocked_solver [blocks] [iterations]
#include <cstdlib>
#include <iostream>

#include "core/analysis.hpp"
#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace hetflow;
  using data::AccessMode;

  const std::size_t blocks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const std::size_t iterations =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  core::Runtime runtime(platform, sched::make_scheduler("dmdas"));

  const auto update = core::Codelet::make(
      "block-update", {{hw::DeviceType::Cpu, 0.5}, {hw::DeviceType::Gpu, 0.8}});
  const auto check = core::Codelet::make(
      "convergence-check", {{hw::DeviceType::Cpu, 0.5}});

  const auto state = runtime.register_data("state", 512ull << 20);
  const auto residual = runtime.register_data("residual", 4096);

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const auto children = runtime.partition_data(state, blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      runtime.submit(util::format("update_%zu_%zu", iter, b), update, 12e9,
                     {{children[b], AccessMode::ReadWrite},
                      {residual, AccessMode::Redux}});
    }
    runtime.unpartition_data(state);
    runtime.submit(util::format("check_%zu", iter), check, 2e8,
                   {{residual, AccessMode::ReadWrite}});
  }
  runtime.wait_all();

  std::cout << runtime.stats().summary(platform) << '\n';
  std::cout << core::critical_path_report(core::analyze_schedule(runtime), 12)
            << '\n';
  std::cout << runtime.tracer().ascii_gantt(platform);
  return 0;
}
