// Scientific discovery campaign: adaptive parameter search over a
// simulated response surface, with every evaluation executed as a
// simulation workflow on the heterogeneous runtime.
//
// Compares grid sweep, random search and the adaptive surrogate strategy
// on time-to-discovery (simulated wall time and evaluations).
//
//   $ ./discovery_campaign
#include <iostream>

#include "hw/presets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workflow/campaign.hpp"

int main() {
  using namespace hetflow;
  using workflow::SearchStrategy;

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const workflow::ResponseSurface surface(
      workflow::ResponseSurface::Kind::Branin, /*noise_sd=*/0.05);

  workflow::CampaignConfig config;
  config.max_evaluations = 256;
  config.batch_size = 8;
  config.target_excess = 0.1;

  std::cout << "objective: " << surface.name()
            << " (true minimum " << surface.true_minimum() << "), target "
            << surface.true_minimum() + config.target_excess << "\n\n";

  util::Table table({"strategy", "reached", "evals", "sim time", "core-s",
                     "best", "at (x, y)"});
  for (SearchStrategy strategy :
       {SearchStrategy::Grid, SearchStrategy::Random,
        SearchStrategy::Surrogate}) {
    const workflow::CampaignResult result =
        workflow::run_campaign(platform, surface, strategy, config);
    table.add_row({to_string(strategy), result.reached_target ? "yes" : "no",
                   std::to_string(result.evaluations),
                   util::human_seconds(result.makespan_s),
                   util::format("%.2f", result.core_seconds),
                   util::format("%.4f", result.best_value),
                   util::format("(%.2f, %.2f)", result.best_x,
                                result.best_y)});
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive strategy reaches the target in a fraction of "
               "the sweeps' evaluations;\neach evaluation ran as a "
               "prepare->simulate->analyze workflow on the simulated node.\n";
  return 0;
}
